//! Prometheus text-exposition rendering (format 0.0.4) for a
//! [`MetricsSnapshot`] — hand-rolled, no client library per the dependency
//! policy.
//!
//! The registry itself stays label-unaware: instrument names are opaque
//! strings, and snapshots keep the exact schema embedded in golden timeline
//! exports. Labels ride *inside* the name via the [`labeled`] convention
//! (`base{key="escaped"}`), which this writer understands: it splits the
//! name back into base + label set, emits one `# TYPE` line per base, and
//! merges the `le` label into existing braces for histogram buckets.
//!
//! Rendering order is snapshot order (= registration order), so two
//! identical registries expose byte-identical pages.

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::metrics::MetricsSnapshot;

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline must be backslash-escaped inside the quotes.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Composes a labeled instrument name: `base{key="value",...}` with values
/// escaped. With no labels the base is returned unchanged. Registering
/// `labeled("serve_tenant_queued", &[("tenant", name)])` yields one
/// instrument per tenant that scrapes as a labeled Prometheus sample.
pub fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return base.to_owned();
    }
    let mut out = String::with_capacity(base.len() + 16 * labels.len());
    out.push_str(base);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
    out
}

/// Splits a (possibly labeled) instrument name into `(base, inner_labels)`
/// where `inner_labels` is the text between the braces, still escaped.
fn split_name(name: &str) -> (&str, Option<&str>) {
    match name.find('{') {
        Some(open) if name.ends_with('}') => {
            (&name[..open], Some(&name[open + 1..name.len() - 1]))
        }
        _ => (name, None),
    }
}

/// Formats a sample value: integral floats print without a fraction (the
/// common case for counts), everything else via the shortest `{}` float
/// form Prometheus accepts.
fn fmt_value(v: f64) -> String {
    if v.is_infinite() {
        return if v > 0.0 { "+Inf".into() } else { "-Inf".into() };
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Emits `# TYPE base kind` the first time `base` is seen. Labeled
/// instruments sharing a base (per-tenant gauges) get a single TYPE line.
fn type_line(out: &mut String, seen: &mut HashSet<String>, base: &str, kind: &str) {
    if seen.insert(base.to_owned()) {
        let _ = writeln!(out, "# TYPE {base} {kind}");
    }
}

/// Joins optional inner labels with one extra `k="v"` pair (for `le`).
fn join_labels(inner: Option<&str>, extra: &str) -> String {
    match inner {
        Some(l) if !l.is_empty() => format!("{{{l},{extra}}}"),
        _ => format!("{{{extra}}}"),
    }
}

/// Renders the whole snapshot as a Prometheus text-exposition page.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut seen = HashSet::new();

    for c in &snap.counters {
        let (base, _) = split_name(&c.name);
        type_line(&mut out, &mut seen, base, "counter");
        let _ = writeln!(out, "{} {}", c.name, c.value);
    }
    for g in &snap.gauges {
        let (base, _) = split_name(&g.name);
        type_line(&mut out, &mut seen, base, "gauge");
        let _ = writeln!(out, "{} {}", g.name, fmt_value(g.value));
    }
    for h in &snap.histograms {
        let (base, inner) = split_name(&h.name);
        type_line(&mut out, &mut seen, base, "histogram");
        let mut cum = 0u64;
        for (i, &n) in h.counts.iter().enumerate() {
            cum += n;
            let le = if i < h.bounds.len() {
                fmt_value(h.bounds[i])
            } else {
                "+Inf".to_owned()
            };
            let lbl = join_labels(inner, &format!("le=\"{le}\""));
            let _ = writeln!(out, "{base}_bucket{lbl} {cum}");
        }
        let suffix = inner.map_or(String::new(), |l| format!("{{{l}}}"));
        let _ = writeln!(out, "{base}_sum{suffix} {}", fmt_value(h.sum));
        let _ = writeln!(out, "{base}_count{suffix} {}", h.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{exponential_buckets, MetricsRegistry};

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
    }

    #[test]
    fn labeled_composes_and_roundtrips_through_split() {
        let name = labeled("serve_tenant_queued", &[("tenant", "ac\"me\\co")]);
        assert_eq!(name, "serve_tenant_queued{tenant=\"ac\\\"me\\\\co\"}");
        let (base, inner) = split_name(&name);
        assert_eq!(base, "serve_tenant_queued");
        assert_eq!(inner, Some("tenant=\"ac\\\"me\\\\co\""));
        assert_eq!(labeled("plain", &[]), "plain");
    }

    #[test]
    fn counters_and_gauges_expose_with_one_type_line_per_base() {
        let mut m = MetricsRegistry::new();
        let a = m.counter("jobs");
        m.inc(a, 3);
        let g1 = m.gauge(&labeled("queued", &[("tenant", "a")]));
        let g2 = m.gauge(&labeled("queued", &[("tenant", "b")]));
        m.set(g1, 2.0);
        m.set(g2, 0.5);
        let page = prometheus_text(&m.snapshot());
        assert!(page.contains("# TYPE jobs counter\njobs 3\n"));
        assert_eq!(page.matches("# TYPE queued gauge").count(), 1);
        assert!(page.contains("queued{tenant=\"a\"} 2\n"));
        assert!(page.contains("queued{tenant=\"b\"} 0.5\n"));
    }

    #[test]
    fn histograms_expose_cumulative_buckets_sum_count() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("lat_us", &exponential_buckets(10.0, 10.0, 3));
        for v in [5.0, 50.0, 50_000.0] {
            m.observe(h, v);
        }
        let page = prometheus_text(&m.snapshot());
        assert!(page.contains("# TYPE lat_us histogram"));
        assert!(page.contains("lat_us_bucket{le=\"10\"} 1\n"));
        assert!(page.contains("lat_us_bucket{le=\"100\"} 2\n"));
        assert!(page.contains("lat_us_bucket{le=\"1000\"} 2\n"));
        assert!(page.contains("lat_us_bucket{le=\"+Inf\"} 3\n"), "page:\n{page}");
        assert!(page.contains("lat_us_sum 50055\n"));
        assert!(page.contains("lat_us_count 3\n"));
    }

    #[test]
    fn labeled_histogram_merges_le_into_braces() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram(&labeled("wall_ms", &[("tenant", "x")]), &[1.0]);
        m.observe(h, 0.5);
        let page = prometheus_text(&m.snapshot());
        assert!(page.contains("wall_ms_bucket{tenant=\"x\",le=\"1\"} 1\n"));
        assert!(page.contains("wall_ms_bucket{tenant=\"x\",le=\"+Inf\"} 1\n"));
        assert!(page.contains("wall_ms_sum{tenant=\"x\"} 0.5\n"));
        assert!(page.contains("wall_ms_count{tenant=\"x\"} 1\n"));
    }

    #[test]
    fn page_is_deterministic_for_identical_registries() {
        let build = || {
            let mut m = MetricsRegistry::new();
            let c = m.counter("a");
            m.inc(c, 1);
            let h = m.histogram("h", &[1.0, 2.0]);
            m.observe(h, 1.5);
            prometheus_text(&m.snapshot())
        };
        assert_eq!(build(), build());
    }
}
