//! The simulated filesystem namespace: files, sizes, and replica placement
//! across tiers.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::storage::TierRef;

/// Dense file index within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FileIdx(pub u32);

/// Metadata for one simulated file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileMeta {
    pub path: String,
    pub size: u64,
    /// Tier instances holding a full copy. The first entry is the original
    /// placement; staging appends replicas.
    pub replicas: Vec<TierRef>,
}

/// What a node crash destroyed (see [`SimFs::fail_node`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeLoss {
    pub replicas_lost: u32,
    /// Files left with zero surviving replicas.
    pub lost_files: Vec<FileIdx>,
    /// Bytes across all dropped replicas.
    pub bytes: u64,
}

/// The namespace.
#[derive(Debug, Default)]
pub struct SimFs {
    files: Vec<FileMeta>,
    by_path: HashMap<String, FileIdx>,
}

impl SimFs {
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a pre-existing (external input) file of known size on `tier`.
    /// Idempotent per path: re-creating updates size and placement.
    pub fn create_external(&mut self, path: &str, size: u64, tier: TierRef) -> FileIdx {
        match self.by_path.get(path) {
            Some(&idx) => {
                let f = &mut self.files[idx.0 as usize];
                f.size = size;
                if !f.replicas.contains(&tier) {
                    f.replicas.push(tier);
                }
                idx
            }
            None => {
                let idx = FileIdx(self.files.len() as u32);
                self.files.push(FileMeta {
                    path: path.to_owned(),
                    size,
                    replicas: vec![tier],
                });
                self.by_path.insert(path.to_owned(), idx);
                idx
            }
        }
    }

    /// Creates (or truncates) a file being written by a task on `tier`.
    pub fn create_for_write(&mut self, path: &str, tier: TierRef) -> FileIdx {
        match self.by_path.get(path) {
            Some(&idx) => {
                let f = &mut self.files[idx.0 as usize];
                f.size = 0;
                f.replicas = vec![tier];
                idx
            }
            None => {
                let idx = FileIdx(self.files.len() as u32);
                self.files.push(FileMeta { path: path.to_owned(), size: 0, replicas: vec![tier] });
                self.by_path.insert(path.to_owned(), idx);
                idx
            }
        }
    }

    pub fn lookup(&self, path: &str) -> Option<FileIdx> {
        self.by_path.get(path).copied()
    }

    pub fn meta(&self, idx: FileIdx) -> &FileMeta {
        &self.files[idx.0 as usize]
    }

    /// Grows a file (writes append); returns the new size.
    pub fn grow(&mut self, idx: FileIdx, bytes: u64) -> u64 {
        let f = &mut self.files[idx.0 as usize];
        f.size += bytes;
        f.size
    }

    /// Records a replica on `tier` (after staging).
    pub fn add_replica(&mut self, idx: FileIdx, tier: TierRef) {
        let f = &mut self.files[idx.0 as usize];
        if !f.replicas.contains(&tier) {
            f.replicas.push(tier);
        }
    }

    /// The most attractive replica for a reader on `node` (lowest
    /// [`TierRef::preference`], ties to the earliest-added replica).
    pub fn best_replica(&self, idx: FileIdx, node: u32) -> TierRef {
        self.try_best_replica(idx, node)
            .expect("files always have at least one replica")
    }

    /// Like [`best_replica`](Self::best_replica), but `None` when every
    /// replica was lost (e.g. to a node crash).
    pub fn try_best_replica(&self, idx: FileIdx, node: u32) -> Option<TierRef> {
        let f = &self.files[idx.0 as usize];
        f.replicas.iter().min_by_key(|t| t.preference(node)).copied()
    }

    /// Whether the file exists but has no surviving replica.
    pub fn is_lost(&self, idx: FileIdx) -> bool {
        self.files[idx.0 as usize].replicas.is_empty()
    }

    /// Drops every replica living on `node`'s local tiers (the node
    /// crashed). Returns what was lost; files whose last replica vanished
    /// are listed in `lost_files` and stay in the namespace as lost (reads
    /// of them fail until a producer re-creates them).
    pub fn fail_node(&mut self, node: u32) -> NodeLoss {
        let mut loss = NodeLoss::default();
        for (i, f) in self.files.iter_mut().enumerate() {
            let before = f.replicas.len();
            f.replicas.retain(|r| r.node != Some(node));
            let dropped = before - f.replicas.len();
            if dropped > 0 {
                loss.replicas_lost += dropped as u32;
                loss.bytes += dropped as u64 * f.size;
                if f.replicas.is_empty() {
                    loss.lost_files.push(FileIdx(i as u32));
                }
            }
        }
        loss
    }

    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// The complete namespace state for checkpointing: the dense file
    /// list (the `by_path` index is derivable and rebuilt on restore).
    pub fn snapshot(&self) -> Vec<FileMeta> {
        self.files.clone()
    }

    /// Rebuilds a namespace from a [`SimFs::snapshot`].
    pub fn from_snapshot(files: Vec<FileMeta>) -> Self {
        let by_path = files
            .iter()
            .enumerate()
            .map(|(i, f)| (f.path.clone(), FileIdx(i as u32)))
            .collect();
        Self { files, by_path }
    }

    /// Total bytes per tier instance (capacity accounting).
    pub fn usage_by_tier(&self) -> HashMap<TierRef, u64> {
        let mut m = HashMap::new();
        for f in &self.files {
            for &r in &f.replicas {
                *m.entry(r).or_insert(0) += f.size;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::TierKind;

    #[test]
    fn create_and_lookup() {
        let mut fs = SimFs::new();
        let t = TierRef::shared(TierKind::Nfs);
        let a = fs.create_external("a", 100, t);
        assert_eq!(fs.lookup("a"), Some(a));
        assert_eq!(fs.meta(a).size, 100);
        assert_eq!(fs.lookup("missing"), None);
    }

    #[test]
    fn create_for_write_truncates() {
        let mut fs = SimFs::new();
        let nfs = TierRef::shared(TierKind::Nfs);
        let ssd = TierRef::node(TierKind::Ssd, 0);
        let a = fs.create_external("a", 100, nfs);
        let a2 = fs.create_for_write("a", ssd);
        assert_eq!(a, a2);
        assert_eq!(fs.meta(a).size, 0);
        assert_eq!(fs.meta(a).replicas, vec![ssd], "old replicas dropped on truncate");
    }

    #[test]
    fn growth_and_usage() {
        let mut fs = SimFs::new();
        let t = TierRef::node(TierKind::Ramdisk, 1);
        let a = fs.create_for_write("out", t);
        fs.grow(a, 500);
        fs.grow(a, 500);
        assert_eq!(fs.meta(a).size, 1000);
        assert_eq!(fs.usage_by_tier()[&t], 1000);
    }

    #[test]
    fn best_replica_prefers_local() {
        let mut fs = SimFs::new();
        let nfs = TierRef::shared(TierKind::Nfs);
        let a = fs.create_external("a", 10, nfs);
        assert_eq!(fs.best_replica(a, 0), nfs);
        fs.add_replica(a, TierRef::node(TierKind::Ssd, 0));
        assert_eq!(fs.best_replica(a, 0).kind, TierKind::Ssd);
        // A different node still prefers the shared copy.
        assert_eq!(fs.best_replica(a, 1), nfs);
        fs.add_replica(a, TierRef::node(TierKind::Ramdisk, 0));
        assert_eq!(fs.best_replica(a, 0).kind, TierKind::Ramdisk);
    }

    #[test]
    fn fail_node_drops_local_replicas_only() {
        let mut fs = SimFs::new();
        let nfs = TierRef::shared(TierKind::Nfs);
        let shm0 = TierRef::node(TierKind::Ramdisk, 0);
        let ssd1 = TierRef::node(TierKind::Ssd, 1);
        let shared = fs.create_external("shared", 10, nfs);
        fs.add_replica(shared, shm0);
        let local_only = fs.create_for_write("local", shm0);
        fs.grow(local_only, 7);
        let other_node = fs.create_for_write("other", ssd1);
        fs.grow(other_node, 5);

        let loss = fs.fail_node(0);
        assert_eq!(loss.replicas_lost, 2);
        assert_eq!(loss.lost_files, vec![local_only]);
        assert_eq!(loss.bytes, 10 + 7);
        assert!(fs.is_lost(local_only));
        assert!(!fs.is_lost(shared));
        assert_eq!(fs.try_best_replica(local_only, 0), None);
        assert_eq!(fs.best_replica(shared, 0), nfs, "shared copy survives");
        assert_eq!(fs.meta(other_node).replicas, vec![ssd1], "other node untouched");

        // Re-creating the lost file revives it.
        fs.create_for_write("local", shm0);
        assert!(!fs.is_lost(local_only));
    }

    #[test]
    fn duplicate_replicas_ignored() {
        let mut fs = SimFs::new();
        let t = TierRef::shared(TierKind::Nfs);
        let a = fs.create_external("a", 10, t);
        fs.add_replica(a, t);
        assert_eq!(fs.meta(a).replicas.len(), 1);
    }
}
