//! The simulated filesystem namespace: files, sizes, and replica placement
//! across tiers.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::storage::TierRef;

/// Dense file index within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FileIdx(pub u32);

/// Metadata for one simulated file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileMeta {
    pub path: String,
    pub size: u64,
    /// Tier instances holding a full copy. The first entry is the original
    /// placement; staging appends replicas.
    pub replicas: Vec<TierRef>,
    /// Content version: 1 for the first write/external creation, bumped by
    /// every [`SimFs::create_for_write`] truncation (so a recovery re-write
    /// is a distinct version with a distinct digest).
    pub version: u32,
    /// Deterministic content digest of this version — a seeded 64-bit mix
    /// of `(path, version, size)`, recomputed as writes grow the file. A
    /// corrupt replica is one whose (simulated) content no longer matches
    /// this digest.
    pub digest: u64,
    /// Per-replica taint, parallel to `replicas`: `None` = digest matches,
    /// `Some(root)` = silently corrupted, with `root` naming the stored
    /// file whose corruption originally propagated here (itself, for a
    /// direct injection).
    pub corrupt: Vec<Option<FileIdx>>,
    /// Set when this file was quarantined; the next verified read of a
    /// clean re-produced version clears it (and emits a reverify instant).
    pub pending_reverify: bool,
}

impl FileMeta {
    fn fresh(path: &str, size: u64, tier: TierRef) -> Self {
        FileMeta {
            path: path.to_owned(),
            size,
            replicas: vec![tier],
            version: 1,
            digest: content_digest(path, 1, size),
            corrupt: vec![None],
            pending_reverify: false,
        }
    }
}

/// The deterministic per-version digest: a pure splitmix64 chain over the
/// FNV-hashed path, the version, and the size. No external crates; stable
/// across platforms and runs so snapshots can carry digests verbatim.
pub fn content_digest(path: &str, version: u32, size: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    let mut s = h ^ (u64::from(version) << 32) ^ size.rotate_left(17);
    for _ in 0..2 {
        s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        s = (s ^ (s >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        s = (s ^ (s >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        s ^= s >> 31;
    }
    s
}

/// What a node crash destroyed (see [`SimFs::fail_node`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeLoss {
    pub replicas_lost: u32,
    /// Files left with zero surviving replicas.
    pub lost_files: Vec<FileIdx>,
    /// Bytes across all dropped replicas.
    pub bytes: u64,
}

/// The namespace.
#[derive(Debug, Default)]
pub struct SimFs {
    files: Vec<FileMeta>,
    by_path: HashMap<String, FileIdx>,
}

impl SimFs {
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a pre-existing (external input) file of known size on `tier`.
    /// Idempotent per path: re-creating updates size and placement.
    pub fn create_external(&mut self, path: &str, size: u64, tier: TierRef) -> FileIdx {
        match self.by_path.get(path) {
            Some(&idx) => {
                let f = &mut self.files[idx.0 as usize];
                f.size = size;
                f.digest = content_digest(&f.path, f.version, f.size);
                if !f.replicas.contains(&tier) {
                    f.replicas.push(tier);
                    f.corrupt.push(None);
                }
                idx
            }
            None => {
                let idx = FileIdx(self.files.len() as u32);
                self.files.push(FileMeta::fresh(path, size, tier));
                self.by_path.insert(path.to_owned(), idx);
                idx
            }
        }
    }

    /// Creates (or truncates) a file being written by a task on `tier`.
    /// Truncating away existing content bumps the version: a recovery
    /// re-write produces a clean new version even if the previous one was
    /// corrupt. Re-placing a still-empty file (an open-for-write followed
    /// by the first write's tier choice) keeps its version — there was no
    /// content to invalidate.
    pub fn create_for_write(&mut self, path: &str, tier: TierRef) -> FileIdx {
        match self.by_path.get(path) {
            Some(&idx) => {
                let f = &mut self.files[idx.0 as usize];
                if f.size > 0 {
                    f.version += 1;
                }
                f.size = 0;
                f.replicas = vec![tier];
                f.digest = content_digest(&f.path, f.version, f.size);
                f.corrupt = vec![None];
                idx
            }
            None => {
                let idx = FileIdx(self.files.len() as u32);
                self.files.push(FileMeta::fresh(path, 0, tier));
                self.by_path.insert(path.to_owned(), idx);
                idx
            }
        }
    }

    pub fn lookup(&self, path: &str) -> Option<FileIdx> {
        self.by_path.get(path).copied()
    }

    pub fn meta(&self, idx: FileIdx) -> &FileMeta {
        &self.files[idx.0 as usize]
    }

    /// Grows a file (writes append); returns the new size.
    pub fn grow(&mut self, idx: FileIdx, bytes: u64) -> u64 {
        let f = &mut self.files[idx.0 as usize];
        f.size += bytes;
        f.digest = content_digest(&f.path, f.version, f.size);
        f.size
    }

    /// Records a replica on `tier` (after staging).
    pub fn add_replica(&mut self, idx: FileIdx, tier: TierRef) {
        let f = &mut self.files[idx.0 as usize];
        if !f.replicas.contains(&tier) {
            f.replicas.push(tier);
            f.corrupt.push(None);
        }
    }

    /// Marks the replica of `idx` on `tier` as silently corrupted, tainted
    /// by `root` (the stored file whose corruption propagated here; pass
    /// `idx` itself for a direct injection). No-op if the replica is gone.
    pub fn mark_corrupt(&mut self, idx: FileIdx, tier: TierRef, root: FileIdx) {
        let f = &mut self.files[idx.0 as usize];
        if let Some(pos) = f.replicas.iter().position(|r| *r == tier) {
            f.corrupt[pos] = Some(root);
        }
    }

    /// The taint root of the replica of `idx` on `tier`, if that replica is
    /// corrupt (`None` = clean or no such replica).
    pub fn replica_corrupt(&self, idx: FileIdx, tier: TierRef) -> Option<FileIdx> {
        let f = &self.files[idx.0 as usize];
        f.replicas
            .iter()
            .position(|r| *r == tier)
            .and_then(|pos| f.corrupt[pos])
    }

    /// Whether any surviving replica of `idx` is corrupt.
    pub fn any_corrupt(&self, idx: FileIdx) -> bool {
        self.files[idx.0 as usize].corrupt.iter().any(Option::is_some)
    }

    /// Quarantines `idx`: every replica (clean ones included — the digest
    /// no longer certifies any of them once the version is tainted) is
    /// dropped, leaving the file lost until a producer re-creates it, and
    /// `pending_reverify` is set so the re-produced version's first
    /// verified read is observable. Returns the quarantined bytes (size ×
    /// replicas dropped).
    pub fn quarantine(&mut self, idx: FileIdx) -> u64 {
        let f = &mut self.files[idx.0 as usize];
        let bytes = f.size * f.replicas.len() as u64;
        f.replicas.clear();
        f.corrupt.clear();
        f.pending_reverify = true;
        bytes
    }

    /// Clears `pending_reverify`; true if it was set.
    pub fn clear_reverify(&mut self, idx: FileIdx) -> bool {
        std::mem::take(&mut self.files[idx.0 as usize].pending_reverify)
    }

    /// The most attractive replica for a reader on `node` (lowest
    /// [`TierRef::preference`], ties to the earliest-added replica).
    pub fn best_replica(&self, idx: FileIdx, node: u32) -> TierRef {
        self.try_best_replica(idx, node)
            .expect("files always have at least one replica")
    }

    /// Like [`best_replica`](Self::best_replica), but `None` when every
    /// replica was lost (e.g. to a node crash).
    pub fn try_best_replica(&self, idx: FileIdx, node: u32) -> Option<TierRef> {
        let f = &self.files[idx.0 as usize];
        f.replicas.iter().min_by_key(|t| t.preference(node)).copied()
    }

    /// Whether the file exists but has no surviving replica.
    pub fn is_lost(&self, idx: FileIdx) -> bool {
        self.files[idx.0 as usize].replicas.is_empty()
    }

    /// Drops every replica living on `node`'s local tiers (the node
    /// crashed). Returns what was lost; files whose last replica vanished
    /// are listed in `lost_files` and stay in the namespace as lost (reads
    /// of them fail until a producer re-creates them).
    pub fn fail_node(&mut self, node: u32) -> NodeLoss {
        let mut loss = NodeLoss::default();
        for (i, f) in self.files.iter_mut().enumerate() {
            let before = f.replicas.len();
            // Drop replicas and their taint marks in lockstep.
            let mut pos = 0;
            while pos < f.replicas.len() {
                if f.replicas[pos].node == Some(node) {
                    f.replicas.remove(pos);
                    f.corrupt.remove(pos);
                } else {
                    pos += 1;
                }
            }
            let dropped = before - f.replicas.len();
            if dropped > 0 {
                loss.replicas_lost += dropped as u32;
                loss.bytes += dropped as u64 * f.size;
                if f.replicas.is_empty() {
                    loss.lost_files.push(FileIdx(i as u32));
                }
            }
        }
        loss
    }

    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// The complete namespace state for checkpointing: the dense file
    /// list (the `by_path` index is derivable and rebuilt on restore).
    pub fn snapshot(&self) -> Vec<FileMeta> {
        self.files.clone()
    }

    /// Rebuilds a namespace from a [`SimFs::snapshot`].
    pub fn from_snapshot(files: Vec<FileMeta>) -> Self {
        let by_path = files
            .iter()
            .enumerate()
            .map(|(i, f)| (f.path.clone(), FileIdx(i as u32)))
            .collect();
        Self { files, by_path }
    }

    /// Total bytes per tier instance (capacity accounting).
    pub fn usage_by_tier(&self) -> HashMap<TierRef, u64> {
        let mut m = HashMap::new();
        for f in &self.files {
            for &r in &f.replicas {
                *m.entry(r).or_insert(0) += f.size;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::TierKind;

    #[test]
    fn create_and_lookup() {
        let mut fs = SimFs::new();
        let t = TierRef::shared(TierKind::Nfs);
        let a = fs.create_external("a", 100, t);
        assert_eq!(fs.lookup("a"), Some(a));
        assert_eq!(fs.meta(a).size, 100);
        assert_eq!(fs.lookup("missing"), None);
    }

    #[test]
    fn create_for_write_truncates() {
        let mut fs = SimFs::new();
        let nfs = TierRef::shared(TierKind::Nfs);
        let ssd = TierRef::node(TierKind::Ssd, 0);
        let a = fs.create_external("a", 100, nfs);
        let a2 = fs.create_for_write("a", ssd);
        assert_eq!(a, a2);
        assert_eq!(fs.meta(a).size, 0);
        assert_eq!(fs.meta(a).replicas, vec![ssd], "old replicas dropped on truncate");
    }

    #[test]
    fn growth_and_usage() {
        let mut fs = SimFs::new();
        let t = TierRef::node(TierKind::Ramdisk, 1);
        let a = fs.create_for_write("out", t);
        fs.grow(a, 500);
        fs.grow(a, 500);
        assert_eq!(fs.meta(a).size, 1000);
        assert_eq!(fs.usage_by_tier()[&t], 1000);
    }

    #[test]
    fn best_replica_prefers_local() {
        let mut fs = SimFs::new();
        let nfs = TierRef::shared(TierKind::Nfs);
        let a = fs.create_external("a", 10, nfs);
        assert_eq!(fs.best_replica(a, 0), nfs);
        fs.add_replica(a, TierRef::node(TierKind::Ssd, 0));
        assert_eq!(fs.best_replica(a, 0).kind, TierKind::Ssd);
        // A different node still prefers the shared copy.
        assert_eq!(fs.best_replica(a, 1), nfs);
        fs.add_replica(a, TierRef::node(TierKind::Ramdisk, 0));
        assert_eq!(fs.best_replica(a, 0).kind, TierKind::Ramdisk);
    }

    #[test]
    fn fail_node_drops_local_replicas_only() {
        let mut fs = SimFs::new();
        let nfs = TierRef::shared(TierKind::Nfs);
        let shm0 = TierRef::node(TierKind::Ramdisk, 0);
        let ssd1 = TierRef::node(TierKind::Ssd, 1);
        let shared = fs.create_external("shared", 10, nfs);
        fs.add_replica(shared, shm0);
        let local_only = fs.create_for_write("local", shm0);
        fs.grow(local_only, 7);
        let other_node = fs.create_for_write("other", ssd1);
        fs.grow(other_node, 5);

        let loss = fs.fail_node(0);
        assert_eq!(loss.replicas_lost, 2);
        assert_eq!(loss.lost_files, vec![local_only]);
        assert_eq!(loss.bytes, 10 + 7);
        assert!(fs.is_lost(local_only));
        assert!(!fs.is_lost(shared));
        assert_eq!(fs.try_best_replica(local_only, 0), None);
        assert_eq!(fs.best_replica(shared, 0), nfs, "shared copy survives");
        assert_eq!(fs.meta(other_node).replicas, vec![ssd1], "other node untouched");

        // Re-creating the lost file revives it.
        fs.create_for_write("local", shm0);
        assert!(!fs.is_lost(local_only));
    }

    #[test]
    fn duplicate_replicas_ignored() {
        let mut fs = SimFs::new();
        let t = TierRef::shared(TierKind::Nfs);
        let a = fs.create_external("a", 10, t);
        fs.add_replica(a, t);
        assert_eq!(fs.meta(a).replicas.len(), 1);
        assert_eq!(fs.meta(a).corrupt.len(), 1);
    }

    #[test]
    fn digests_track_path_version_and_size() {
        let mut fs = SimFs::new();
        let t = TierRef::shared(TierKind::Nfs);
        let a = fs.create_for_write("a", t);
        let d0 = fs.meta(a).digest;
        fs.grow(a, 100);
        let d1 = fs.meta(a).digest;
        assert_ne!(d0, d1, "growth changes the digest");
        assert_eq!(fs.meta(a).version, 1);
        fs.create_for_write("a", t);
        assert_eq!(fs.meta(a).version, 2, "truncation bumps the version");
        fs.grow(a, 100);
        assert_ne!(fs.meta(a).digest, d1, "same size, new version, new digest");
        // The digest is a pure function: replaying the history reproduces it.
        assert_eq!(fs.meta(a).digest, content_digest("a", 2, 100));
        let b = fs.create_for_write("b", t);
        fs.grow(b, 100);
        assert_ne!(fs.meta(b).digest, fs.meta(a).digest, "path-dependent");
    }

    #[test]
    fn corruption_marks_are_per_replica() {
        let mut fs = SimFs::new();
        let nfs = TierRef::shared(TierKind::Nfs);
        let ssd = TierRef::node(TierKind::Ssd, 0);
        let a = fs.create_external("a", 10, nfs);
        fs.add_replica(a, ssd);
        assert!(!fs.any_corrupt(a));
        fs.mark_corrupt(a, ssd, a);
        assert_eq!(fs.replica_corrupt(a, ssd), Some(a));
        assert_eq!(fs.replica_corrupt(a, nfs), None, "source replica stays clean");
        assert!(fs.any_corrupt(a));
        // Truncating for a re-write clears taint with the old version.
        fs.create_for_write("a", ssd);
        assert!(!fs.any_corrupt(a));
        assert_eq!(fs.replica_corrupt(a, ssd), None);
    }

    #[test]
    fn fail_node_keeps_corruption_in_lockstep() {
        let mut fs = SimFs::new();
        let nfs = TierRef::shared(TierKind::Nfs);
        let shm0 = TierRef::node(TierKind::Ramdisk, 0);
        let ssd1 = TierRef::node(TierKind::Ssd, 1);
        let a = fs.create_external("a", 10, shm0);
        fs.add_replica(a, nfs);
        fs.add_replica(a, ssd1);
        fs.mark_corrupt(a, ssd1, a);
        fs.fail_node(0);
        assert_eq!(fs.meta(a).replicas, vec![nfs, ssd1]);
        assert_eq!(fs.replica_corrupt(a, nfs), None);
        assert_eq!(fs.replica_corrupt(a, ssd1), Some(a), "taint follows its replica");
    }

    #[test]
    fn quarantine_drops_all_replicas_and_sets_reverify() {
        let mut fs = SimFs::new();
        let nfs = TierRef::shared(TierKind::Nfs);
        let ssd = TierRef::node(TierKind::Ssd, 0);
        let a = fs.create_external("a", 10, nfs);
        fs.add_replica(a, ssd);
        fs.mark_corrupt(a, ssd, a);
        assert_eq!(fs.quarantine(a), 20, "both replicas quarantined");
        assert!(fs.is_lost(a));
        assert!(!fs.any_corrupt(a));
        assert!(fs.meta(a).pending_reverify);
        assert!(fs.clear_reverify(a));
        assert!(!fs.clear_reverify(a), "one-shot");
    }

    #[test]
    fn snapshot_round_trips_integrity_state() {
        let mut fs = SimFs::new();
        let nfs = TierRef::shared(TierKind::Nfs);
        let ssd = TierRef::node(TierKind::Ssd, 0);
        let a = fs.create_external("a", 10, nfs);
        fs.add_replica(a, ssd);
        fs.mark_corrupt(a, ssd, a);
        let b = fs.create_for_write("b", ssd);
        fs.quarantine(b);
        let restored = SimFs::from_snapshot(fs.snapshot());
        assert_eq!(restored.replica_corrupt(a, ssd), Some(a));
        assert_eq!(restored.meta(a).digest, fs.meta(a).digest);
        assert!(restored.meta(b).pending_reverify);
    }
}
