//! Event-core sharding: node/resource domain partitioning.
//!
//! A [`ShardPlan`] assigns every cluster node — and with it the node's
//! local tiers, NIC, per-node cache levels, and the jobs placed on it — to
//! one shard. Shard `0` additionally owns every *shared* resource (shared
//! tiers, cluster-wide cache levels), so fair-share arithmetic over shared
//! resources always runs on exactly one owner. The simulator keeps one
//! event `BinaryHeap` per shard and dispatches by merging the shard heads
//! in canonical `(time, seq)` order; because `(time, seq)` pairs are
//! globally unique and assigned identically at any shard count, the merged
//! dispatch sequence — and therefore every downstream observable — is
//! byte-identical to the single-heap run by construction.
//!
//! Between cross-shard interactions the dispatcher holds a *conservative
//! window*: having picked shard `s`, it keeps draining `s`'s heap without
//! re-scanning the others while `s`'s head stays below the earliest foreign
//! event (the window horizon). Pushes into foreign shards tighten the
//! horizon exactly, so the fast path never reorders the canonical merge.
//! [`ShardStats`] counts those windows and the barrier crossings between
//! them — the direct measure of how much cross-shard coupling a workload
//! has.

use serde::{Deserialize, Serialize};

/// Assignment of cluster nodes to event-core shards.
///
/// Nodes are partitioned into contiguous blocks (node order is the
/// placement order everywhere else in the simulator, so contiguous blocks
/// keep co-placed pipelines on one shard). The plan is validated at
/// construction: at least one shard, and no more shards than nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardPlan {
    shards: u32,
    /// `of_node[n]` = shard owning node `n`.
    of_node: Vec<u32>,
}

impl ShardPlan {
    /// The trivial plan: every node on shard 0 (the classic single event
    /// loop).
    pub fn single(nodes: usize) -> Self {
        ShardPlan { shards: 1, of_node: vec![0; nodes] }
    }

    /// Partitions `nodes` into `shards` contiguous blocks, the first
    /// `nodes % shards` blocks one node larger. Errors when `shards` is 0
    /// or exceeds the node count (an empty shard would never own anything).
    pub fn partition(nodes: usize, shards: u32) -> Result<Self, String> {
        if shards == 0 {
            return Err("shard plan needs at least one shard".into());
        }
        if shards as usize > nodes.max(1) {
            return Err(format!("{shards} shards for {nodes} nodes: shards must not exceed nodes"));
        }
        let k = shards as usize;
        let base = nodes / k;
        let extra = nodes % k;
        let mut of_node = Vec::with_capacity(nodes);
        for s in 0..k {
            let len = base + usize::from(s < extra);
            of_node.extend(std::iter::repeat_n(s as u32, len));
        }
        debug_assert_eq!(of_node.len(), nodes);
        Ok(ShardPlan { shards, of_node })
    }

    /// Number of shards in the plan.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Number of nodes the plan covers.
    pub fn node_count(&self) -> usize {
        self.of_node.len()
    }

    /// Shard owning node `n`; nodes outside the plan (defensive: e.g. a
    /// fault aimed past the cluster, surfaced later as a typed error) fall
    /// back to the shared shard 0.
    pub fn shard_of_node(&self, n: u32) -> u32 {
        self.of_node.get(n as usize).copied().unwrap_or(0)
    }
}

/// Dispatch-side sharding counters (runtime observability; plan-dependent,
/// so deliberately *not* part of snapshots — restored runs start fresh).
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Conservative windows opened (maximal same-shard dispatch runs).
    pub windows: u64,
    /// Dispatches that crossed from one shard to another (window barriers).
    pub barrier_crossings: u64,
    /// Events dispatched per shard (heap events and flow completions,
    /// attributed to the owning job's shard).
    pub dispatched: Vec<u64>,
    /// Shard of the most recent dispatch (the open window's owner).
    pub current: Option<u32>,
}

impl ShardStats {
    pub fn new(shards: u32) -> Self {
        ShardStats { dispatched: vec![0; shards as usize], ..Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_plan_maps_everything_to_shard_zero() {
        let p = ShardPlan::single(5);
        assert_eq!(p.shards(), 1);
        assert_eq!(p.node_count(), 5);
        for n in 0..5 {
            assert_eq!(p.shard_of_node(n), 0);
        }
    }

    #[test]
    fn partition_is_contiguous_and_balanced() {
        let p = ShardPlan::partition(10, 4).unwrap();
        assert_eq!(p.shards(), 4);
        // 10 = 3 + 3 + 2 + 2, contiguous blocks.
        let got: Vec<u32> = (0..10).map(|n| p.shard_of_node(n)).collect();
        assert_eq!(got, vec![0, 0, 0, 1, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn partition_exact_division() {
        let p = ShardPlan::partition(8, 4).unwrap();
        let got: Vec<u32> = (0..8).map(|n| p.shard_of_node(n)).collect();
        assert_eq!(got, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn invalid_plans_rejected() {
        assert!(ShardPlan::partition(4, 0).is_err());
        assert!(ShardPlan::partition(4, 5).is_err());
        // One node, one shard is the smallest valid plan.
        assert!(ShardPlan::partition(1, 1).is_ok());
    }

    #[test]
    fn out_of_range_node_falls_back_to_shard_zero() {
        let p = ShardPlan::partition(4, 2).unwrap();
        assert_eq!(p.shard_of_node(99), 0);
    }

    #[test]
    fn stats_track_window_shape() {
        let mut st = ShardStats::new(2);
        assert_eq!(st.dispatched, vec![0, 0]);
        st.windows += 1;
        st.current = Some(1);
        assert_eq!(st.current, Some(1));
    }
}
