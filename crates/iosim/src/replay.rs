//! Trace replay with scenario transformations — the BigFlowSim-style
//! emulator used for the paper's Belle II "emulated optimizations" (§6.4,
//! Table 3).
//!
//! A captured task trace replays its data accesses while compute time stays
//! constant (the paper's conservative lower-bound methodology). Three
//! transformations model the studied optimizations:
//!
//! * **Defragment** — regularize access patterns by sorting each task's
//!   accesses by (file, offset), increasing spatial locality (Table 3
//!   "regular" pattern).
//! * **Filter** — convert data-field selections into a near-storage filter
//!   that divides transferred bytes by a factor (the origin still reads the
//!   same data, but the wire and caches carry less).
//! * **Ensemble** — group `k` tasks per dataset so they co-schedule on one
//!   node and share its node-wide cache levels.

use serde::{Deserialize, Serialize};

use crate::sim::{Action, JobSpec};

/// One replayed operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceOp {
    pub file: String,
    pub offset: u64,
    pub len: u64,
    /// Read (true) or write (false).
    pub read: bool,
    /// Simulated compute between this op and the next, ns.
    pub compute_ns: u64,
}

/// A task's captured trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskTrace {
    pub name: String,
    /// The primary dataset the task draws from (ensemble grouping key).
    pub dataset: String,
    pub ops: Vec<TraceOp>,
    /// Ensemble group, assigned by [`Transform::Ensemble`].
    pub ensemble: Option<u32>,
}

/// A Table 3 scenario transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transform {
    /// Regularize access patterns (sort by file, offset).
    Defragment,
    /// Near-storage filtering: reads transfer `1/factor` of the bytes.
    Filter { factor: u32 },
    /// Group `k` tasks per dataset onto shared nodes/caches.
    Ensemble { k: u32 },
}

/// Applies a transformation in place.
pub fn apply(traces: &mut [TaskTrace], t: Transform) {
    match t {
        Transform::Defragment => {
            for task in traces.iter_mut() {
                task.ops.sort_by(|a, b| a.file.cmp(&b.file).then(a.offset.cmp(&b.offset)));
            }
        }
        Transform::Filter { factor } => {
            assert!(factor >= 1);
            for task in traces.iter_mut() {
                for op in &mut task.ops {
                    if op.read {
                        op.len = (op.len / u64::from(factor)).max(1);
                    }
                }
            }
        }
        Transform::Ensemble { k } => {
            assert!(k >= 1);
            // Deterministic grouping: sort indices by dataset, chunk by k.
            let mut idx: Vec<usize> = (0..traces.len()).collect();
            idx.sort_by(|&a, &b| {
                traces[a]
                    .dataset
                    .cmp(&traces[b].dataset)
                    .then(traces[a].name.cmp(&traces[b].name))
            });
            for (group, chunk) in idx.chunks(k as usize).enumerate() {
                for &i in chunk {
                    traces[i].ensemble = Some(group as u32);
                }
            }
        }
    }
}

/// Converts traces into simulator jobs.
///
/// Placement: tasks in the same ensemble group land on the same node
/// (`group % nodes`); ungrouped tasks round-robin by trace order. Each job's
/// actions interleave reads/writes with the trace's compute gaps.
pub fn to_jobs(traces: &[TaskTrace], nodes: u32) -> Vec<JobSpec> {
    assert!(nodes >= 1);
    traces
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let node = match t.ensemble {
                Some(g) => g % nodes,
                None => (i as u32) % nodes,
            };
            let mut spec = JobSpec::new(&t.name, node);
            for op in &t.ops {
                spec = spec.action(if op.read {
                    Action::Read { file: op.file.clone(), offset: Some(op.offset), len: op.len }
                } else {
                    Action::Write { file: op.file.clone(), len: op.len, tier: None }
                });
                if op.compute_ns > 0 {
                    spec = spec.action(Action::Compute { ns: op.compute_ns });
                }
            }
            spec
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(name: &str, dataset: &str, offsets: &[u64]) -> TaskTrace {
        TaskTrace {
            name: name.into(),
            dataset: dataset.into(),
            ops: offsets
                .iter()
                .map(|&o| TraceOp {
                    file: format!("{dataset}.root"),
                    offset: o,
                    len: 1 << 20,
                    read: true,
                    compute_ns: 1000,
                })
                .collect(),
            ensemble: None,
        }
    }

    #[test]
    fn defragment_sorts_offsets() {
        let mut ts = vec![trace("t-0", "ds0", &[300, 100, 200])];
        apply(&mut ts, Transform::Defragment);
        let offs: Vec<u64> = ts[0].ops.iter().map(|o| o.offset).collect();
        assert_eq!(offs, vec![100, 200, 300]);
    }

    #[test]
    fn filter_divides_read_lengths() {
        let mut ts = vec![trace("t-0", "ds0", &[0])];
        ts[0].ops.push(TraceOp {
            file: "out".into(),
            offset: 0,
            len: 1 << 20,
            read: false,
            compute_ns: 0,
        });
        apply(&mut ts, Transform::Filter { factor: 4 });
        assert_eq!(ts[0].ops[0].len, 1 << 18, "read shrinks 4x");
        assert_eq!(ts[0].ops[1].len, 1 << 20, "write untouched");
    }

    #[test]
    fn ensemble_groups_by_dataset() {
        let mut ts = vec![
            trace("t-0", "dsB", &[0]),
            trace("t-1", "dsA", &[0]),
            trace("t-2", "dsA", &[0]),
            trace("t-3", "dsB", &[0]),
        ];
        apply(&mut ts, Transform::Ensemble { k: 2 });
        // dsA pair share a group; dsB pair share another.
        assert_eq!(ts[1].ensemble, ts[2].ensemble);
        assert_eq!(ts[0].ensemble, ts[3].ensemble);
        assert_ne!(ts[0].ensemble, ts[1].ensemble);
    }

    #[test]
    fn jobs_follow_ensemble_placement() {
        let mut ts = vec![
            trace("t-0", "dsA", &[0]),
            trace("t-1", "dsA", &[0]),
            trace("t-2", "dsB", &[0]),
            trace("t-3", "dsB", &[0]),
        ];
        apply(&mut ts, Transform::Ensemble { k: 2 });
        let jobs = to_jobs(&ts, 4);
        assert_eq!(jobs[0].node, jobs[1].node, "dsA ensemble co-located");
        assert_eq!(jobs[2].node, jobs[3].node, "dsB ensemble co-located");
        assert_ne!(jobs[0].node, jobs[2].node);
    }

    #[test]
    fn jobs_interleave_compute() {
        let ts = vec![trace("t-0", "ds", &[0, 100])];
        let jobs = to_jobs(&ts, 1);
        assert_eq!(jobs[0].actions.len(), 4, "2 reads + 2 compute gaps");
        assert!(matches!(jobs[0].actions[1], Action::Compute { ns: 1000 }));
    }
}

#[cfg(test)]
mod single_node_tests {
    use super::*;

    #[test]
    fn single_node_placement_never_out_of_range() {
        let ts = vec![
            TaskTrace { name: "a".into(), dataset: "d".into(), ops: vec![], ensemble: Some(9) },
            TaskTrace { name: "b".into(), dataset: "d".into(), ops: vec![], ensemble: None },
        ];
        for j in to_jobs(&ts, 1) {
            assert_eq!(j.node, 0);
        }
    }
}
