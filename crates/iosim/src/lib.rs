//! # dfl-iosim — a deterministic discrete-event cluster simulator
//!
//! The execution substrate standing in for the paper's physical testbeds
//! (Table 2): compute nodes with cores, storage tiers (NFS, Lustre/BeeGFS
//! parallel filesystems, node-local SSD and RAM-disk, a WAN-attached data
//! server), a fair-share bandwidth contention model, a TAZeR-style
//! multi-level cache (Table 4), and a trace-replay emulator in the spirit of
//! BigFlowSim (Table 3 scenarios).
//!
//! Workflow tasks are *jobs*: sequences of compute and I/O actions executed
//! on simulated cores. Every I/O action is also reported to an optional
//! [`dfl_trace::Monitor`], so DFL measurement rides along with execution —
//! exactly as the original `LD_PRELOAD` collector rides along with real
//! workflows.
//!
//! ```
//! use dfl_iosim::cluster::ClusterSpec;
//! use dfl_iosim::sim::{Action, JobSpec, SimConfig, Simulation};
//! use dfl_iosim::storage::TierRef;
//!
//! let cluster = ClusterSpec::cpu_cluster(2);
//! let mut sim = Simulation::new(cluster, SimConfig::default());
//! sim.fs_mut().create_external("in.dat", 1 << 20, TierRef::shared(dfl_iosim::storage::TierKind::Nfs));
//! let job = sim.submit(JobSpec::new("reader", 0).action(Action::read_file("in.dat")));
//! sim.run();
//! assert!(sim.job_report(job).unwrap().end_ns > 0);
//! ```

pub mod breakdown;
pub mod cache;
pub mod cluster;
pub mod error;
pub mod fault;
pub mod flow;
pub mod fs;
pub mod obs;
pub mod replay;
pub mod shard;
pub mod sim;
pub mod storage;
pub mod time;

pub use cluster::ClusterSpec;
pub use error::SimError;
pub use fault::{ChaosKind, FailureCause, FailureReport, FaultPlan, JobFailure};
pub use obs::{SimObs, SimObsState};
pub use sim::{
    Action, JobId, JobSpec, RunOutcome, SimConfig, SimSnapshot, Simulation, SNAPSHOT_VERSION,
};
pub use storage::{TierKind, TierRef};
pub use time::SimTime;
