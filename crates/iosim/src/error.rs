//! Simulator error type.

use std::fmt;

/// Errors surfaced by simulation setup and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A job referenced a file that does not exist in the namespace.
    NoSuchFile(String),
    /// A job was placed on a node index outside the cluster.
    BadNode(u32),
    /// The requested tier is not available on this cluster.
    NoSuchTier(String),
    /// A job id that was never submitted.
    BadJob(u32),
    /// The simulation deadlocked: jobs remain but none can make progress
    /// (usually a dependency cycle).
    Deadlock { pending: usize },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoSuchFile(p) => write!(f, "no such file: {p}"),
            SimError::BadNode(n) => write!(f, "node {n} does not exist"),
            SimError::NoSuchTier(t) => write!(f, "tier {t} not available on this cluster"),
            SimError::BadJob(j) => write!(f, "job {j} was never submitted"),
            SimError::Deadlock { pending } => {
                write!(f, "simulation deadlocked with {pending} jobs pending")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(SimError::NoSuchFile("x".into()).to_string(), "no such file: x");
        assert!(SimError::Deadlock { pending: 3 }.to_string().contains("3 jobs"));
    }
}
