//! Simulator error type.

use std::fmt;

/// One stuck job in a [`SimError::Deadlock`] report: its identity and the
/// things it is waiting on (unfinished dependencies, lost/missing files).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StuckJob {
    pub job: u32,
    pub name: String,
    pub node: u32,
    /// Job state label at deadlock time ("waiting-deps", "queued", ...).
    pub state: &'static str,
    /// Human-readable blockers: `dep <name>` for unfinished dependencies,
    /// `lost file <path>` / `missing file <path>` for unreadable inputs.
    pub waiting_on: Vec<String>,
}

impl fmt::Display for StuckJob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {} '{}' on node {} ({})", self.job, self.name, self.node, self.state)?;
        if !self.waiting_on.is_empty() {
            write!(f, " waiting on: {}", self.waiting_on.join(", "))?;
        }
        Ok(())
    }
}

/// Errors surfaced by simulation setup and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A job referenced a file that does not exist in the namespace.
    NoSuchFile(String),
    /// A job was placed on a node index outside the cluster.
    BadNode(u32),
    /// The requested tier is not available on this cluster.
    NoSuchTier(String),
    /// A job id that was never submitted.
    BadJob(u32),
    /// A job tried to open/read a file that was never created.
    MissingFile { file: String, job: String },
    /// A task kept failing after exhausting its retry budget.
    RetriesExhausted { job: String, attempts: u32 },
    /// The simulation deadlocked: jobs remain but none can make progress
    /// (a dependency cycle, or producers lost to faults and never re-run).
    Deadlock { pending: usize, stuck: Vec<StuckJob> },
    /// Flow-accounting invariant broken: a job finished or failed holding a
    /// flow key the byte tracker never saw (previously a panic path).
    UntrackedFlow { job: u32, key: u64 },
    /// A chaos plan killed the coordinator before dispatch `at_event`; the
    /// run can be resumed from its latest checkpoint manifest.
    CoordinatorCrash { at_event: u64 },
    /// A snapshot could not be restored (shape mismatch or decode failure).
    Snapshot(String),
    /// The requested shard plan does not fit the cluster (zero shards, more
    /// shards than nodes, or a node count that disagrees with the cluster).
    ShardPlan(String),
    /// An internal event referenced state that does not exist — the event
    /// machine's invariants were broken, e.g. by a hand-edited snapshot
    /// (previously a panic path).
    CorruptState(&'static str),
    /// Verification detected corrupt data that recovery cannot repair:
    /// the tainted file has no producer task to re-run (an external input
    /// was corrupted, or lineage was exhausted).
    IntegrityViolation { file: String },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoSuchFile(p) => write!(f, "no such file: {p}"),
            SimError::BadNode(n) => write!(f, "node {n} does not exist"),
            SimError::NoSuchTier(t) => write!(f, "tier {t} not available on this cluster"),
            SimError::BadJob(j) => write!(f, "job {j} was never submitted"),
            SimError::MissingFile { file, job } => {
                write!(f, "job '{job}' opened nonexistent file {file} for reading")
            }
            SimError::RetriesExhausted { job, attempts } => {
                write!(f, "job '{job}' still failing after {attempts} attempts")
            }
            SimError::Deadlock { pending, stuck } => {
                write!(f, "simulation deadlocked with {pending} jobs pending")?;
                for s in stuck {
                    write!(f, "\n  {s}")?;
                }
                Ok(())
            }
            SimError::UntrackedFlow { job, key } => {
                write!(f, "job {job} holds flow {key} with no tracked byte count")
            }
            SimError::CoordinatorCrash { at_event } => {
                write!(f, "chaos: coordinator killed before dispatch {at_event}")
            }
            SimError::Snapshot(msg) => write!(f, "snapshot restore failed: {msg}"),
            SimError::ShardPlan(msg) => write!(f, "invalid shard plan: {msg}"),
            SimError::CorruptState(what) => write!(f, "corrupt simulator state: {what}"),
            SimError::IntegrityViolation { file } => {
                write!(f, "integrity violation: {file} corrupt with no producer to re-run")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(SimError::NoSuchFile("x".into()).to_string(), "no such file: x");
        assert!(
            SimError::Deadlock { pending: 3, stuck: vec![] }.to_string().contains("3 jobs")
        );
        let e = SimError::MissingFile { file: "a/b".into(), job: "t0".into() };
        assert!(e.to_string().contains("a/b") && e.to_string().contains("t0"));
        let e = SimError::RetriesExhausted { job: "t1".into(), attempts: 4 };
        assert!(e.to_string().contains("4 attempts"));
    }

    #[test]
    fn deadlock_names_stuck_jobs() {
        let e = SimError::Deadlock {
            pending: 2,
            stuck: vec![StuckJob {
                job: 5,
                name: "merge".into(),
                node: 1,
                state: "waiting-deps",
                waiting_on: vec!["dep align~r1".into(), "lost file /shm/x".into()],
            }],
        };
        let text = e.to_string();
        assert!(text.contains("job 5 'merge' on node 1 (waiting-deps)"), "{text}");
        assert!(text.contains("dep align~r1") && text.contains("lost file /shm/x"), "{text}");
    }
}
