//! Storage tiers: the kinds, performance envelopes, and scopes of the
//! storage options in the paper's Table 2.

use serde::{Deserialize, Serialize};

/// Kind of storage tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TierKind {
    /// Cluster-shared NFS (default on both testbeds).
    Nfs,
    /// BeeGFS parallel filesystem (GPU cluster).
    Beegfs,
    /// Lustre parallel filesystem (CPU cluster).
    Lustre,
    /// Node-local SSD.
    Ssd,
    /// Node-local RAM-disk (`/dev/shm`).
    Ramdisk,
    /// Remote storage behind a 1 Gb/s WAN (the Data server).
    Wan,
}

impl TierKind {
    pub fn label(self) -> &'static str {
        match self {
            TierKind::Nfs => "nfs",
            TierKind::Beegfs => "beegfs",
            TierKind::Lustre => "lustre",
            TierKind::Ssd => "ssd",
            TierKind::Ramdisk => "ramdisk",
            TierKind::Wan => "wan",
        }
    }

    /// Inverse of [`label`](Self::label), for parsing CLI specs.
    pub fn from_label(label: &str) -> Option<TierKind> {
        Some(match label {
            "nfs" => TierKind::Nfs,
            "beegfs" => TierKind::Beegfs,
            "lustre" => TierKind::Lustre,
            "ssd" => TierKind::Ssd,
            "ramdisk" => TierKind::Ramdisk,
            "wan" => TierKind::Wan,
            _ => return None,
        })
    }

    /// Whether instances of this tier are per-node (vs cluster-shared or
    /// remote).
    pub fn is_node_local(self) -> bool {
        matches!(self, TierKind::Ssd | TierKind::Ramdisk)
    }

    pub fn is_remote(self) -> bool {
        matches!(self, TierKind::Wan)
    }
}

/// Performance/capacity envelope of one tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierSpec {
    pub kind: TierKind,
    /// Sequential read bandwidth, bytes/sec (per instance: per node for
    /// node-local tiers, aggregate for shared tiers).
    pub read_bw: f64,
    /// Write bandwidth, bytes/sec.
    pub write_bw: f64,
    /// Per-operation access latency, ns.
    pub latency_ns: u64,
    /// Metadata (open/create) cost, ns.
    pub open_ns: u64,
    /// Capacity, bytes (per instance).
    pub capacity: u64,
}

impl TierSpec {
    /// Plausible defaults per kind (calibrated for shape, not absolute
    /// fidelity — see DESIGN.md).
    pub fn default_for(kind: TierKind) -> TierSpec {
        const MB: f64 = 1024.0 * 1024.0;
        const GB: u64 = 1 << 30;
        match kind {
            TierKind::Nfs => TierSpec {
                kind,
                read_bw: 500.0 * MB,
                write_bw: 350.0 * MB,
                latency_ns: 2_000_000,
                open_ns: 1_500_000,
                capacity: 100_000 * GB,
            },
            TierKind::Beegfs => TierSpec {
                kind,
                read_bw: 2_000.0 * MB,
                write_bw: 1_500.0 * MB,
                latency_ns: 500_000,
                open_ns: 400_000,
                capacity: 500_000 * GB,
            },
            TierKind::Lustre => TierSpec {
                kind,
                read_bw: 5_000.0 * MB,
                write_bw: 3_500.0 * MB,
                latency_ns: 500_000,
                open_ns: 400_000,
                capacity: 1_000_000 * GB,
            },
            TierKind::Ssd => TierSpec {
                kind,
                read_bw: 2_000.0 * MB,
                write_bw: 1_200.0 * MB,
                latency_ns: 100_000,
                open_ns: 30_000,
                capacity: 1_000 * GB,
            },
            TierKind::Ramdisk => TierSpec {
                kind,
                read_bw: 8_000.0 * MB,
                write_bw: 6_000.0 * MB,
                latency_ns: 5_000,
                open_ns: 2_000,
                capacity: 64 * GB,
            },
            TierKind::Wan => TierSpec {
                kind,
                // 1 Gb/s WAN ≈ 119 MiB/s.
                read_bw: 119.0 * MB,
                write_bw: 119.0 * MB,
                latency_ns: 50_000_000,
                open_ns: 60_000_000,
                capacity: 1_000_000 * GB,
            },
        }
    }
}

/// A reference to a tier instance: shared tiers have one instance; node-local
/// tiers have one per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TierRef {
    pub kind: TierKind,
    /// `Some(node)` for node-local tier instances.
    pub node: Option<u32>,
}

impl TierRef {
    /// Shared (or remote) tier instance.
    pub fn shared(kind: TierKind) -> Self {
        assert!(!kind.is_node_local(), "{} is node-local; use TierRef::node", kind.label());
        TierRef { kind, node: None }
    }

    /// Node-local tier instance.
    pub fn node(kind: TierKind, node: u32) -> Self {
        assert!(kind.is_node_local(), "{} is not node-local", kind.label());
        TierRef { kind, node: Some(node) }
    }

    /// Locality preference for replica selection from `from_node`: lower is
    /// better. Same-node RAM-disk < same-node SSD < shared PFS < NFS < other
    /// node's local < WAN.
    pub fn preference(self, from_node: u32) -> u32 {
        match (self.kind, self.node) {
            (TierKind::Ramdisk, Some(n)) if n == from_node => 0,
            (TierKind::Ssd, Some(n)) if n == from_node => 1,
            (TierKind::Lustre, _) => 2,
            (TierKind::Beegfs, _) => 3,
            (TierKind::Nfs, _) => 4,
            (TierKind::Ramdisk, _) | (TierKind::Ssd, _) => 5,
            (TierKind::Wan, _) => 6,
        }
    }
}

impl std::fmt::Display for TierRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.node {
            Some(n) => write!(f, "{}@node{}", self.kind.label(), n),
            None => write!(f, "{}", self.kind.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_classify() {
        assert!(TierKind::Ssd.is_node_local());
        assert!(TierKind::Ramdisk.is_node_local());
        assert!(!TierKind::Nfs.is_node_local());
        assert!(TierKind::Wan.is_remote());
        assert!(!TierKind::Beegfs.is_remote());
    }

    #[test]
    fn defaults_ordering_is_sane() {
        let nfs = TierSpec::default_for(TierKind::Nfs);
        let shm = TierSpec::default_for(TierKind::Ramdisk);
        let ssd = TierSpec::default_for(TierKind::Ssd);
        let wan = TierSpec::default_for(TierKind::Wan);
        assert!(shm.read_bw > ssd.read_bw && ssd.read_bw > nfs.read_bw && nfs.read_bw > wan.read_bw);
        assert!(shm.latency_ns < ssd.latency_ns && ssd.latency_ns < nfs.latency_ns);
        assert!(wan.latency_ns > nfs.latency_ns);
    }

    #[test]
    fn preference_prefers_local() {
        let shm0 = TierRef::node(TierKind::Ramdisk, 0);
        let ssd0 = TierRef::node(TierKind::Ssd, 0);
        let ssd1 = TierRef::node(TierKind::Ssd, 1);
        let bfs = TierRef::shared(TierKind::Beegfs);
        let wan = TierRef::shared(TierKind::Wan);
        assert!(shm0.preference(0) < ssd0.preference(0));
        assert!(ssd0.preference(0) < bfs.preference(0));
        assert!(bfs.preference(0) < ssd1.preference(0));
        assert!(ssd1.preference(0) < wan.preference(0));
    }

    #[test]
    #[should_panic(expected = "node-local")]
    fn shared_ref_to_local_tier_panics() {
        TierRef::shared(TierKind::Ssd);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TierRef::shared(TierKind::Nfs).to_string(), "nfs");
        assert_eq!(TierRef::node(TierKind::Ssd, 3).to_string(), "ssd@node3");
    }
}
