//! Simulated time: integer nanoseconds for exact, platform-independent
//! determinism.

use serde::{Deserialize, Serialize};

/// A point in simulated time (nanoseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub fn ns(self) -> u64 {
        self.0
    }

    pub fn secs(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn from_secs(s: f64) -> Self {
        SimTime((s * 1e9).round() as u64)
    }

    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Adds a duration in nanoseconds.
    pub fn add_ns(self, ns: u64) -> Self {
        SimTime(self.0 + ns)
    }

    /// Adds a duration expressed in (possibly fractional) seconds, rounding
    /// up so progress is never lost to truncation.
    pub fn add_secs_ceil(self, s: f64) -> Self {
        SimTime(self.0 + (s * 1e9).ceil() as u64)
    }

    /// Duration since `earlier` (saturating).
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}s", self.secs())
    }
}

/// Duration of a transfer of `bytes` at `rate` bytes/sec, in nanoseconds,
/// rounded up (never zero for nonzero bytes).
pub fn transfer_ns(bytes: f64, rate: f64) -> u64 {
    if bytes <= 0.0 {
        return 0;
    }
    assert!(rate > 0.0, "transfer rate must be positive");
    ((bytes / rate) * 1e9).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(1.5).ns(), 1_500_000_000);
        assert_eq!(SimTime::from_millis(2).ns(), 2_000_000);
        assert_eq!(SimTime::from_micros(3).ns(), 3_000);
        assert!((SimTime(2_000_000_000).secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime(100).add_ns(50);
        assert_eq!(t.ns(), 150);
        assert_eq!(t.since(SimTime(100)), 50);
        assert_eq!(SimTime(10).since(SimTime(100)), 0, "saturates");
    }

    #[test]
    fn ceil_rounding_preserves_progress() {
        let t = SimTime(0).add_secs_ceil(1e-12);
        assert!(t.ns() >= 1, "sub-ns durations round up to 1ns");
    }

    #[test]
    fn transfer_duration() {
        assert_eq!(transfer_ns(0.0, 100.0), 0);
        assert_eq!(transfer_ns(100.0, 100.0), 1_000_000_000);
        assert!(transfer_ns(1.0, 1e12) >= 1);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime(1_500_000_000).to_string(), "1.500s");
    }
}
