//! The discrete-event simulation engine: jobs, cores, I/O, caching, and
//! measurement.
//!
//! A *job* is one workflow task instance: a node assignment, a dependency
//! list, and a sequence of [`Action`]s (compute intervals and POSIX-style
//! I/O). Jobs occupy one core while running. I/O actions become flows in the
//! [`crate::flow::FlowNet`] fair-share bandwidth model, optionally
//! after a cache lookup ([`crate::cache::CacheState`]); every
//! operation is simultaneously reported to the attached
//! [`dfl_trace::Monitor`], producing DFL measurements as a side effect of
//! execution.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use dfl_obs::{ObsConfig, SpanKind, Timeline};
use dfl_trace::{IoTiming, Monitor, MonitorState, OpenMode, TaskContext, TaskSnapshot};
use serde::{Deserialize, Serialize};

use crate::breakdown::{Breakdown, FlowTag};
use crate::cache::{CacheConfig, CacheSnapshot, CacheState};
use crate::cluster::ClusterSpec;
use crate::error::{SimError, StuckJob};
use crate::fault::{ChaosKind, DegradeTarget, FailureCause, FailureReport, FaultPlan, JobFailure};
use crate::flow::{FlowKey, FlowNet, FlowNetSnapshot, FlowOwner, ResourceId};
use crate::fs::{FileIdx, FileMeta, SimFs};
use crate::obs::{SimObs, SimObsState};
use crate::shard::{ShardPlan, ShardStats};
use crate::storage::{TierKind, TierRef};
use crate::time::SimTime;

/// Handle to a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u32);

/// One step of a job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Action {
    /// Pure computation for `ns` nanoseconds.
    Compute { ns: u64 },
    /// Open a file (pays the tier's metadata cost; starts trace shadowing).
    Open { file: String, write: bool },
    /// Read `len` bytes at `offset` (or the sequential cursor when `None`);
    /// `len == 0` means "to end of file".
    Read { file: String, offset: Option<u64>, len: u64 },
    /// Append `len` bytes. `tier` places the file on first write; default is
    /// the cluster's default tier.
    Write { file: String, len: u64, tier: Option<TierRef> },
    /// Close a file (flushes trace shadow state).
    Close { file: String },
    /// Copy a whole file to another tier (staging); subsequent readers pick
    /// the closest replica. `from` forces the copy source (e.g. always the
    /// WAN origin, as plain FTP would); `None` picks the closest replica.
    Stage { file: String, to: TierRef, from: Option<TierRef>, tag: FlowTag },
}

impl Action {
    /// Convenience: a whole-file sequential read (`open`, read-to-end,
    /// `close` are implied by the engine's implicit-open handling).
    pub fn read_file(file: &str) -> Action {
        Action::Read { file: file.into(), offset: None, len: 0 }
    }

    /// Convenience: an appending write of `len` bytes.
    pub fn write_file(file: &str, len: u64) -> Action {
        Action::Write { file: file.into(), len, tier: None }
    }

    pub fn compute_ms(ms: u64) -> Action {
        Action::Compute { ns: ms * 1_000_000 }
    }

    pub fn stage(file: &str, to: TierRef) -> Action {
        Action::Stage { file: file.into(), to, from: None, tag: FlowTag::Stage }
    }
}

/// A job specification (builder-style).
#[derive(Debug, Clone)]
pub struct JobSpec {
    pub name: String,
    /// Logical (template) name; defaults to the prefix of `name` before `-`.
    pub logical: Option<String>,
    pub node: u32,
    pub actions: Vec<Action>,
    pub deps: Vec<JobId>,
    /// Arrival offset from simulation start, ns.
    pub submit_delay_ns: u64,
    /// Recovery work (lineage re-runs, re-staging): its flows are tagged
    /// [`FlowTag::Recovery`] so the breakdown shows what faults cost.
    pub recovery: bool,
}

impl JobSpec {
    pub fn new(name: &str, node: u32) -> Self {
        Self {
            name: name.to_owned(),
            logical: None,
            node,
            actions: Vec::new(),
            deps: Vec::new(),
            submit_delay_ns: 0,
            recovery: false,
        }
    }

    pub fn logical(mut self, logical: &str) -> Self {
        self.logical = Some(logical.to_owned());
        self
    }

    pub fn action(mut self, a: Action) -> Self {
        self.actions.push(a);
        self
    }

    pub fn actions(mut self, a: impl IntoIterator<Item = Action>) -> Self {
        self.actions.extend(a);
        self
    }

    pub fn dep(mut self, j: JobId) -> Self {
        self.deps.push(j);
        self
    }

    pub fn deps(mut self, ds: impl IntoIterator<Item = JobId>) -> Self {
        self.deps.extend(ds);
        self
    }

    pub fn delay_ns(mut self, ns: u64) -> Self {
        self.submit_delay_ns = ns;
        self
    }

    pub fn recovery(mut self, recovery: bool) -> Self {
        self.recovery = recovery;
        self
    }
}

/// Which origins route through the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CacheOrigins {
    /// Only remote (WAN) reads are cached — TAZeR's primary use.
    #[default]
    RemoteOnly,
    /// All reads are cached.
    All,
}

/// When reads and transfers check content digests against the filesystem's
/// recorded values. Verification is not free: it costs extra simulated
/// latency proportional to the bytes checked (modeling a checksum pass at
/// ~4 bytes/ns), so "verify everything" vs "verify nothing and pay the
/// taint cone on detection" is a measurable trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum VerifyPolicy {
    /// No verification: corruption propagates silently until an external
    /// check (or nothing) catches it.
    #[default]
    Off,
    /// Every read verifies the replica it is served from.
    OnRead,
    /// Every staging transfer verifies the source replica before copying.
    OnTransfer,
    /// Every `n`-th read per job verifies (1 behaves like `OnRead`;
    /// 0 disables, like `Off`). Models spot-checking.
    Sample(u32),
}

/// Simulation-wide configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Attach a DFL monitor (default: yes, with default config).
    pub monitor: Option<dfl_trace::MonitorConfig>,
    /// Enable a cache hierarchy.
    pub cache: Option<CacheConfig>,
    pub cache_origins: CacheOrigins,
    /// Buffered writes: tasks return from writes at memory speed while the
    /// data drains to its tier in the background — the Table 1 "write
    /// buffering" remediation. Consumers still wait for the producer *task*
    /// (the usual workflow dependency), not for the drain.
    pub write_buffering: bool,
    /// Fault schedule injected through the event loop. The default
    /// ([`FaultPlan::none`]) injects nothing and leaves the trajectory
    /// byte-identical to a fault-free build.
    pub faults: FaultPlan,
    /// Content-digest verification on reads/transfers. The default
    /// ([`VerifyPolicy::Off`]) adds no latency and leaves the trajectory
    /// byte-identical to builds without the integrity machinery.
    pub verify: VerifyPolicy,
    /// Observability: record a sim-time timeline (spans, instants, samples)
    /// retrievable via [`Simulation::take_timeline`]. `None` (the default)
    /// disables recording entirely — the run pays one branch per potential
    /// emission site and allocates nothing.
    pub obs: Option<ObsConfig>,
}

impl Default for SimConfig {
    /// Measurement on by default: a monitor with default settings rides
    /// along, matching how the real collector shadows every workflow run.
    fn default() -> Self {
        SimConfig {
            monitor: Some(dfl_trace::MonitorConfig::default()),
            cache: None,
            cache_origins: CacheOrigins::default(),
            write_buffering: false,
            faults: FaultPlan::none(),
            verify: VerifyPolicy::Off,
            obs: None,
        }
    }
}

impl SimConfig {
    pub fn with_monitor() -> Self {
        SimConfig { monitor: Some(dfl_trace::MonitorConfig::default()), ..Default::default() }
    }

    pub fn with_cache(cache: CacheConfig) -> Self {
        SimConfig {
            monitor: Some(dfl_trace::MonitorConfig::default()),
            cache: Some(cache),
            ..Default::default()
        }
    }
}

/// Post-run per-job report.
#[derive(Debug, Clone)]
pub struct JobReport {
    pub name: String,
    pub node: u32,
    pub start_ns: u64,
    pub end_ns: u64,
    pub breakdown: Breakdown,
    /// This attempt failed (crash, transient I/O error, lost input); a
    /// replacement job carries the retry.
    pub failed: bool,
}

impl JobReport {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Lifecycle state of one job. Public only for snapshot transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    WaitingDeps,
    Queued,
    Running,
    Done,
    /// The attempt failed (crash, transient error, lost input). Terminal for
    /// this job; a coordination layer may resubmit a replacement.
    Failed,
}

/// Kind of an in-flight I/O action. Public only for snapshot transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IoKind {
    Read,
    Write,
    Stage,
}

/// An I/O action between its latency event and its flow completions.
/// Public only for snapshot transport.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PendingIo {
    pub kind: IoKind,
    pub file: FileIdx,
    pub offset: u64,
    pub len: u64,
    pub started: SimTime,
    /// For staging: destination replica.
    pub stage_to: Option<TierRef>,
    /// The written/staged replica lands corrupt, tainted by this root file
    /// (decided up front so the outcome is schedule-independent).
    pub corrupt: Option<FileIdx>,
    /// Flow descriptors awaiting launch (after the latency event).
    pub launch: Vec<(Vec<ResourceId>, f64, FlowTag)>,
}

struct Job {
    name: String,
    logical: String,
    node: u32,
    actions: VecDeque<Action>,
    deps_left: usize,
    /// Original dependency list (kept for deadlock diagnostics).
    deps: Vec<u32>,
    dependents: Vec<u32>,
    state: JobState,
    pending_flows: usize,
    io: Option<PendingIo>,
    ctx: Option<TaskContext>,
    fds: HashMap<FileIdx, dfl_trace::handle::Fd>,
    cursor: HashMap<FileIdx, u64>,
    start: Option<SimTime>,
    end: Option<SimTime>,
    breakdown: Breakdown,
    submit_delay_ns: u64,
    /// Recovery work: flows tagged [`FlowTag::Recovery`].
    recovery: bool,
    /// Replacement (retry) for an earlier failed job: completing this job
    /// also releases the original's dependents.
    replaces: Option<u32>,
    /// Active flow keys (for cancellation when the job fails).
    flows: Vec<FlowKey>,
    /// Per-job I/O operation counter: the schedule-independent input to
    /// [`FaultPlan::io_op_fails`].
    io_ops: u64,
    /// Bytes this job has moved through the flow network.
    moved_bytes: f64,
    /// This attempt read corrupt data without verifying it: everything it
    /// writes from now on is tainted by this root file.
    taint: Option<FileIdx>,
    /// Reads issued by this job so far (drives [`VerifyPolicy::Sample`]).
    reads_seen: u64,
}

/// An entry in the simulator's event log. Public only for snapshot
/// transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Event {
    Arrive(u32),
    ComputeDone(u32),
    IoLatencyDone(u32),
    OpenDone(u32),
    /// Apply the pre-registered capacity change at this index.
    CapacityChange(u32),
    /// Crash `faults.crashes[i]` fires.
    NodeCrash(u32),
    /// The node of `faults.crashes[i]` restarts.
    NodeRecover(u32),
}

/// Named bandwidth resources for the cluster.
struct Resources {
    /// Shared tier resources by kind.
    shared: HashMap<TierKind, ResourceId>,
    /// Node-local tier resources: `[node][kind]`.
    node_tier: Vec<HashMap<TierKind, ResourceId>>,
    /// Per-node NIC.
    nic: Vec<ResourceId>,
    /// Cache-serving resources per level: either per-node or cluster-wide.
    cache_levels: Vec<CacheLevelRes>,
}

enum CacheLevelRes {
    PerNode(Vec<ResourceId>),
    Shared(ResourceId),
}

/// How a bounded run ended (see [`Simulation::run_to_incident`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every submitted job reached a terminal state with no failure left to
    /// report.
    Completed,
    /// One or more job attempts failed; the simulation is paused at the
    /// failure time so the caller can submit recovery/retry jobs.
    Failures(Vec<JobFailure>),
    /// A requested pause point was reached (see [`Simulation::set_pause_at`]
    /// and [`Simulation::set_pause_on_job_complete`]): the clock stands at
    /// the pause time, nothing has been dispatched past it, and calling
    /// `run_to_incident` again continues exactly where the run left off.
    /// Checkpoint policies snapshot at these transparent pause points.
    Paused,
}

/// Counters feeding [`Simulation::failure_report`]. Public only for
/// snapshot transport.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultStats {
    pub crashes: u32,
    pub transient_io_errors: u32,
    pub failed_attempts: u32,
    pub lost_replicas: u32,
    pub lost_files: u32,
    pub lost_bytes: u64,
    pub wasted_ns: u64,
    pub wasted_bytes: f64,
    pub recovery_bytes: f64,
    pub total_moved: f64,
    pub corruptions_injected: u32,
    pub corruptions_detected: u32,
    pub quarantined_files: u32,
    pub quarantined_bytes: u64,
    pub verified_bytes: u64,
}

/// The simulator.
pub struct Simulation {
    cluster: ClusterSpec,
    net: FlowNet,
    res: Resources,
    fs: SimFs,
    cache: Option<CacheState>,
    /// Per-level read latency (ns), derived from the cache config at
    /// construction (empty when `cache` is `None`).
    cache_lat: Vec<u64>,
    cache_origins: CacheOrigins,
    monitor: Option<Monitor>,
    jobs: Vec<Job>,
    /// Per-shard event queues. Events live inline in the heap entries
    /// (`(time, seq, event)`; `Event` is a two-word `Copy` payload, so
    /// there is no side event log to grow or slab to manage — queue memory
    /// is bounded by in-flight events). `seq` is globally unique and
    /// monotone, so dispatching by merging the shard heads in `(time, seq)`
    /// order reproduces the single-queue order exactly at any shard count.
    queues: Vec<BinaryHeap<Reverse<(u64, u64, Event)>>>,
    /// Node → shard assignment (see [`crate::shard::ShardPlan`]).
    plan: ShardPlan,
    /// Resource → owning node (`u32::MAX` = shared: shared tiers and
    /// cluster-wide cache levels). Shard ownership is derived through the
    /// plan, so this table stays shard-count-invariant — it is also the
    /// domain key for the canonical event cursors in snapshots.
    res_owner: Vec<u32>,
    /// Conservative dispatch window: `(shard, horizon_t, horizon_seq)` —
    /// while the window shard's head stays below the horizon (the earliest
    /// foreign event), dispatch skips the cross-shard scan. Derived state:
    /// never serialized, reset on restore.
    window: Option<(u32, u64, u64)>,
    /// Window/barrier counters (runtime observability, plan-dependent).
    shard_stats: ShardStats,
    capacity_changes: Vec<(ResourceId, f64)>,
    write_buffering: bool,
    next_seq: u64,
    now: SimTime,
    free_cores: Vec<u32>,
    ready: Vec<VecDeque<u32>>,
    finished: usize,
    faults: FaultPlan,
    verify: VerifyPolicy,
    node_up: Vec<bool>,
    /// Failures observed since the last `run_to_incident` return.
    pending_failures: Vec<JobFailure>,
    /// A hard error raised inside an event handler (e.g. missing file).
    fatal: Option<SimError>,
    stats: FaultStats,
    /// Timeline recorder; `None` = observability disabled (zero overhead).
    obs: Option<Box<SimObs>>,
    /// The configuration this simulator was built from (embedded in
    /// snapshots so restore can rebuild the derived layout).
    config: SimConfig,
    /// Total dispatches so far (heap events + flow completions). Always
    /// counted: it is the chaos-plan coordinate system and rides along in
    /// snapshots so crash points line up across crash/resume boundaries.
    events_dispatched: u64,
    /// Armed chaos fault: the coordinator dies just before this dispatch.
    chaos: Option<ChaosKind>,
    /// Transparent pause request: return [`RunOutcome::Paused`] before
    /// dispatching anything strictly after this sim-time. One-shot.
    pause_at: Option<u64>,
    /// Pause after every job completion (stage-granular checkpoints).
    pause_on_job_complete: bool,
    /// A pause was requested by a completion hook; honored at loop top.
    pause_pending: bool,
}

impl Simulation {
    /// Builds a simulator for `cluster`. `config.monitor` controls DFL
    /// measurement: `SimConfig::default()` attaches a monitor with default
    /// settings, while an explicit `monitor: None` runs without one (and
    /// [`Simulation::measurements`] then returns `None`).
    pub fn new(cluster: ClusterSpec, config: SimConfig) -> Self {
        let plan = ShardPlan::single(cluster.node_count());
        Self::new_sharded(cluster, config, plan).expect("single-shard plan always fits")
    }

    /// Builds a simulator whose event core is partitioned by `plan` (see
    /// [`ShardPlan`]). Dispatch order — and therefore every observable,
    /// including snapshots — is byte-identical at any shard count; the plan
    /// only changes which queue an event waits in and how large the
    /// conservative same-shard dispatch windows are.
    pub fn new_sharded(
        cluster: ClusterSpec,
        config: SimConfig,
        plan: ShardPlan,
    ) -> Result<Self, SimError> {
        if plan.node_count() != cluster.node_count() {
            return Err(SimError::ShardPlan(format!(
                "plan covers {} nodes but the cluster has {}",
                plan.node_count(),
                cluster.node_count()
            )));
        }
        let retained_config = config.clone();
        let mut net = FlowNet::new();

        let mut shared = HashMap::new();
        for t in &cluster.tiers {
            if !t.kind.is_node_local() {
                shared.insert(t.kind, net.add_resource(&format!("tier:{}", t.kind.label()), t.read_bw));
            }
        }
        let mut node_tier = Vec::new();
        let mut nic = Vec::new();
        for n in 0..cluster.node_count() {
            let mut m = HashMap::new();
            for t in &cluster.tiers {
                if t.kind.is_node_local() {
                    m.insert(
                        t.kind,
                        net.add_resource(&format!("{}:{n}", t.kind.label()), t.read_bw),
                    );
                }
            }
            node_tier.push(m);
            nic.push(net.add_resource(&format!("nic:{n}"), cluster.nic_bw));
        }

        let cache = config.cache.map(CacheState::new);
        // Per-level read latencies, flattened out of the cache config once —
        // the read hot path maxes over these instead of cloning the level
        // table per access.
        let cache_lat: Vec<u64> = cache
            .as_ref()
            .map(|c| c.config().levels.iter().map(|l| l.latency_ns).collect())
            .unwrap_or_default();
        let cache_levels = match &cache {
            None => Vec::new(),
            Some(c) => c
                .config()
                .levels
                .iter()
                .enumerate()
                .map(|(i, lvl)| match lvl.scope {
                    crate::cache::CacheScope::ClusterWide => CacheLevelRes::Shared(
                        net.add_resource(&format!("cache{}:shared", i + 1), lvl.read_bw),
                    ),
                    _ => CacheLevelRes::PerNode(
                        (0..cluster.node_count())
                            .map(|n| {
                                net.add_resource(&format!("cache{}:{n}", i + 1), lvl.read_bw)
                            })
                            .collect(),
                    ),
                })
                .collect(),
        };

        let monitor = config.monitor.map(Monitor::new);
        // Integrity machinery active? Gates the obs-layer corruption
        // counters so runs without it record byte-identical timelines.
        let integrity =
            config.verify != VerifyPolicy::Off || config.faults.has_corruption();
        // The flow network is fully populated at this point, so the track
        // layout (nodes, then resources in registration order) is final.
        let obs = config
            .obs
            .as_ref()
            .map(|c| Box::new(SimObs::new(c, cluster.node_count(), &net, integrity)));
        let free_cores = cluster.nodes.iter().map(|n| n.cores).collect();
        let ready = (0..cluster.node_count()).map(|_| VecDeque::new()).collect();
        let node_up = vec![true; cluster.node_count()];

        let res = Resources { shared, node_tier, nic, cache_levels };
        // Resource → owning node: node-local tiers, NICs, and per-node
        // cache levels follow their node; everything else (shared tiers,
        // cluster-wide cache levels) stays `u32::MAX` = shared.
        let mut res_owner = vec![u32::MAX; net.resource_count()];
        for (n, m) in res.node_tier.iter().enumerate() {
            for r in m.values() {
                res_owner[r.0 as usize] = n as u32;
            }
        }
        for (n, r) in res.nic.iter().enumerate() {
            res_owner[r.0 as usize] = n as u32;
        }
        for lvl in &res.cache_levels {
            if let CacheLevelRes::PerNode(v) = lvl {
                for (n, r) in v.iter().enumerate() {
                    res_owner[r.0 as usize] = n as u32;
                }
            }
        }
        let queues = (0..plan.shards()).map(|_| BinaryHeap::new()).collect();
        let shard_stats = ShardStats::new(plan.shards());

        let mut sim = Self {
            cluster,
            net,
            res,
            fs: SimFs::new(),
            cache,
            cache_lat,
            cache_origins: config.cache_origins,
            monitor,
            jobs: Vec::new(),
            queues,
            plan,
            res_owner,
            window: None,
            shard_stats,
            capacity_changes: Vec::new(),
            write_buffering: config.write_buffering,
            next_seq: 0,
            now: SimTime::ZERO,
            free_cores,
            ready,
            finished: 0,
            faults: config.faults,
            verify: config.verify,
            node_up,
            pending_failures: Vec::new(),
            fatal: None,
            stats: FaultStats::default(),
            obs,
            chaos: retained_config.faults.chaos,
            config: retained_config,
            events_dispatched: 0,
            pause_at: None,
            pause_on_job_complete: false,
            pause_pending: false,
        };
        sim.schedule_fault_plan();
        Ok(sim)
    }

    /// Turns the fault plan into ordinary events so faults interleave with
    /// flow completions through the same deterministic loop.
    fn schedule_fault_plan(&mut self) {
        for i in 0..self.faults.crashes.len() {
            let c = self.faults.crashes[i];
            assert!(
                (c.node as usize) < self.cluster.node_count(),
                "crash node {} out of range",
                c.node
            );
            self.push_event(SimTime(c.at_ns), Event::NodeCrash(i as u32));
        }
        for i in 0..self.faults.degradations.len() {
            let d = self.faults.degradations[i];
            let (resource, base) = match d.target {
                DegradeTarget::Tier(t) => {
                    assert!(
                        self.cluster.tier(t.kind).is_some(),
                        "degraded tier {} not on this cluster",
                        t.kind.label()
                    );
                    (self.tier_resource(t), self.tier_spec(t.kind).read_bw)
                }
                DegradeTarget::Nic(n) => {
                    assert!(
                        (n as usize) < self.cluster.node_count(),
                        "degraded nic {n} out of range"
                    );
                    (self.nic_resource(n), self.cluster.nic_bw)
                }
            };
            self.schedule_capacity_change(d.at_ns, resource, base * d.factor);
            self.schedule_capacity_change(d.at_ns.saturating_add(d.duration_ns), resource, base);
        }
    }

    pub fn fs(&self) -> &SimFs {
        &self.fs
    }

    pub fn fs_mut(&mut self) -> &mut SimFs {
        &mut self.fs
    }

    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    pub fn monitor(&self) -> Option<&Monitor> {
        self.monitor.as_ref()
    }

    /// Current simulated time (the makespan once `run` returns).
    pub fn time(&self) -> SimTime {
        self.now
    }

    /// Submits a job; it arrives at `submit_delay_ns` and starts when its
    /// dependencies finish and a core on its node frees up.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        assert!(
            (spec.node as usize) < self.cluster.node_count(),
            "node {} out of range",
            spec.node
        );
        let id = self.jobs.len() as u32;
        let logical = spec
            .logical
            .clone()
            .unwrap_or_else(|| spec.name.split('-').next().unwrap_or(&spec.name).to_owned());
        let mut deps_left = 0;
        for d in &spec.deps {
            let dj = &mut self.jobs[d.0 as usize];
            if dj.state != JobState::Done {
                dj.dependents.push(id);
                deps_left += 1;
            }
        }
        self.jobs.push(Job {
            name: spec.name,
            logical,
            node: spec.node,
            actions: spec.actions.into(),
            deps_left,
            deps: spec.deps.iter().map(|d| d.0).collect(),
            dependents: Vec::new(),
            state: JobState::WaitingDeps,
            pending_flows: 0,
            io: None,
            ctx: None,
            fds: HashMap::new(),
            cursor: HashMap::new(),
            start: None,
            end: None,
            breakdown: Breakdown::new(),
            submit_delay_ns: spec.submit_delay_ns,
            recovery: spec.recovery,
            replaces: None,
            flows: Vec::new(),
            io_ops: 0,
            moved_bytes: 0.0,
            taint: None,
            reads_seen: 0,
        });
        self.push_event(SimTime(spec.submit_delay_ns), Event::Arrive(id));
        JobId(id)
    }

    /// Submits `spec` as a replacement (retry) of failed job `original`:
    /// when the replacement completes, jobs that depended on the original
    /// are released as if the original had finished.
    ///
    /// Depending on a *failed* job never releases (failure is terminal), so
    /// retries chain replacements back to the same original to keep a single
    /// release point.
    pub fn resubmit(&mut self, original: JobId, spec: JobSpec) -> JobId {
        assert!((original.0 as usize) < self.jobs.len(), "unknown original job");
        let id = self.submit(spec);
        self.jobs[id.0 as usize].replaces = Some(original.0);
        id
    }

    /// Whether a job reached `Done` (vs pending or failed).
    pub fn job_done(&self, id: JobId) -> bool {
        self.jobs
            .get(id.0 as usize)
            .is_some_and(|j| j.state == JobState::Done)
    }

    /// Shard owning an event: job-lifecycle events follow the job's node,
    /// capacity changes follow the owning resource, crash/recover events
    /// follow the crashing node. Out-of-range targets (surfaced later as
    /// typed errors by their handlers) fall back to shard 0.
    fn shard_of_event(&self, ev: Event) -> u32 {
        self.domain_of_event(ev).map_or(0, |n| self.plan.shard_of_node(n))
    }

    /// Shard-count-invariant routing domain of an event: the owning node,
    /// or `None` for the shared domain (shared-resource capacity changes,
    /// out-of-range targets). This keys the canonical event cursors in
    /// snapshots.
    fn domain_of_event(&self, ev: Event) -> Option<u32> {
        match ev {
            Event::Arrive(j)
            | Event::ComputeDone(j)
            | Event::IoLatencyDone(j)
            | Event::OpenDone(j) => Some(self.jobs[j as usize].node),
            Event::CapacityChange(idx) => self
                .capacity_changes
                .get(idx as usize)
                .map(|(r, _)| self.res_owner[r.0 as usize])
                .filter(|&n| n != u32::MAX),
            Event::NodeCrash(i) | Event::NodeRecover(i) => self
                .faults
                .crashes
                .get(i as usize)
                .map(|c| c.node)
                .filter(|&n| (n as usize) < self.cluster.node_count()),
        }
    }

    fn push_event(&mut self, at: SimTime, ev: Event) {
        let s = self.shard_of_event(ev);
        let entry = (at.ns(), self.next_seq, ev);
        self.next_seq += 1;
        self.queues[s as usize].push(Reverse(entry));
        // A push into a foreign shard below the open window's horizon
        // tightens the horizon: the window shard may no longer run ahead
        // past this event.
        if let Some((ws, wt, wseq)) = self.window {
            if s != ws && (entry.0, entry.1) < (wt, wseq) {
                self.window = Some((ws, entry.0, entry.1));
            }
        }
    }

    /// Earliest pending heap event in canonical `(time, seq)` order, with
    /// its shard. Uses the conservative window as a fast path: while the
    /// current shard's head is below the horizon (the earliest event of any
    /// other shard, tightened exactly by `push_event`), no cross-shard scan
    /// is needed and the head is the global minimum by construction.
    fn peek_event(&mut self) -> Option<(u64, u64, Event, u32)> {
        if let Some((ws, wt, wseq)) = self.window {
            if let Some(&Reverse((t, seq, ev))) = self.queues[ws as usize].peek() {
                if (t, seq) < (wt, wseq) {
                    return Some((t, seq, ev, ws));
                }
            }
            // Window exhausted: the next event belongs to another shard (or
            // nothing is left) — close it and rescan.
            self.window = None;
        }
        let mut best: Option<(u64, u64, Event, u32)> = None;
        for (s, q) in self.queues.iter().enumerate() {
            if let Some(&Reverse((t, seq, ev))) = q.peek() {
                if best.is_none_or(|(bt, bs, _, _)| (t, seq) < (bt, bs)) {
                    best = Some((t, seq, ev, s as u32));
                }
            }
        }
        if let Some((_, _, _, s)) = best {
            if self.plan.shards() > 1 {
                let mut horizon = (u64::MAX, u64::MAX);
                for (i, q) in self.queues.iter().enumerate() {
                    if i as u32 == s {
                        continue;
                    }
                    if let Some(&Reverse((t, seq, _))) = q.peek() {
                        if (t, seq) < horizon {
                            horizon = (t, seq);
                        }
                    }
                }
                self.window = Some((s, horizon.0, horizon.1));
            }
        }
        best
    }

    /// Records a dispatch on shard `s` for window accounting.
    fn note_dispatch(&mut self, s: u32) {
        let st = &mut self.shard_stats;
        st.dispatched[s as usize] += 1;
        if st.current != Some(s) {
            if st.current.is_some() {
                st.barrier_crossings += 1;
            }
            st.current = Some(s);
            st.windows += 1;
        }
    }

    /// Dispatch-side sharding counters (windows, barrier crossings,
    /// per-shard dispatch totals). Plan-dependent observability — not part
    /// of the byte-identity surface and not serialized.
    pub fn shard_stats(&self) -> &ShardStats {
        &self.shard_stats
    }

    /// The shard plan this simulator dispatches under.
    pub fn shard_plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Runs until every submitted job completes, ignoring job failures
    /// (failed jobs stay failed; no retries). Callers that react to
    /// failures drive [`Self::run_to_incident`] instead.
    pub fn run(&mut self) -> Result<(), SimError> {
        loop {
            match self.run_to_incident()? {
                RunOutcome::Completed => return Ok(()),
                RunOutcome::Failures(_) | RunOutcome::Paused => {}
            }
        }
    }

    /// Requests a transparent pause: the next `run_to_incident` call returns
    /// [`RunOutcome::Paused`] before dispatching anything strictly after
    /// sim-time `at_ns`, with the clock advanced to the pause point. The
    /// request is one-shot (cleared when it fires) and changes nothing about
    /// the trajectory — re-entering dispatches exactly what an uninterrupted
    /// run would have dispatched next.
    pub fn set_pause_at(&mut self, at_ns: Option<u64>) {
        self.pause_at = at_ns;
    }

    /// When enabled, `run_to_incident` returns [`RunOutcome::Paused`] after
    /// each job completion (before the next dispatch) — the hook for
    /// stage-granular checkpoint policies.
    pub fn set_pause_on_job_complete(&mut self, on: bool) {
        self.pause_on_job_complete = on;
    }

    /// Arms (or disarms) a chaos fault. Snapshots never carry chaos, so a
    /// restored simulator is disarmed until the driver re-arms it.
    pub fn set_chaos(&mut self, chaos: Option<ChaosKind>) {
        self.chaos = chaos;
    }

    /// Whether failures raised since the last [`RunOutcome::Failures`]
    /// return are still undelivered. [`Self::snapshot`] is illegal at such
    /// a point — recovery actions (e.g. quarantining a running cone job)
    /// can raise fresh failures mid-handling, and a checkpoint must wait
    /// for the follow-up incident that delivers them.
    pub fn has_pending_failures(&self) -> bool {
        !self.pending_failures.is_empty()
    }

    /// Total dispatches so far (heap events + flow completions) — the
    /// coordinate system for [`ChaosKind::CoordinatorCrash`].
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Runs until everything completes or a job attempt fails. On
    /// [`RunOutcome::Failures`] the clock is paused at the failure point:
    /// the caller inspects the failures, submits recovery/retry jobs (see
    /// [`Self::resubmit`]), and calls `run_to_incident` again.
    pub fn run_to_incident(&mut self) -> Result<RunOutcome, SimError> {
        self.validate_tiers()?;
        loop {
            if let Some(e) = self.fatal.take() {
                return Err(e);
            }
            if !self.pending_failures.is_empty() {
                return Ok(RunOutcome::Failures(std::mem::take(&mut self.pending_failures)));
            }
            let heap_next = self.peek_event();
            let flow_next = self.net.next_completion();
            // Stop once every job finished and all flows (e.g. buffered
            // write drains) have landed: remaining events can only be
            // fault-plan injections, which cannot affect a completed run
            // (and would otherwise inflate the makespan).
            if self.finished == self.jobs.len() && flow_next.is_none() {
                break;
            }
            // Pause hooks run before sampling and dispatch so a checkpoint
            // taken at the pause captures exactly the pre-dispatch state an
            // uninterrupted run would pass through.
            if self.pause_pending {
                self.pause_pending = false;
                return Ok(RunOutcome::Paused);
            }
            let t_next = match (heap_next, flow_next) {
                (Some((ht, _, _, _)), Some((ft, _))) => Some(ht.min(ft.ns())),
                (Some((ht, _, _, _)), None) => Some(ht),
                (None, Some((ft, _))) => Some(ft.ns()),
                (None, None) => None,
            };
            if let (Some(p), Some(t)) = (self.pause_at, t_next) {
                if t > p {
                    // Advance the clock to the pause deadline (behavior
                    // neutral: the next dispatch sets `now` to `t >= p`
                    // anyway) so repeated pause requests always progress.
                    self.now = SimTime(p.max(self.now.ns()));
                    self.pause_at = None;
                    return Ok(RunOutcome::Paused);
                }
            }
            if let Some(ChaosKind::CoordinatorCrash { at_event }) = self.chaos {
                if t_next.is_some() && self.events_dispatched >= at_event {
                    return Err(SimError::CoordinatorCrash { at_event });
                }
            }
            self.take_samples_until(t_next.unwrap_or(0));
            match (heap_next, flow_next) {
                (None, None) => break,
                (Some((ht, _, _, _)), Some((ft, fk))) if ft.ns() < ht => {
                    self.events_dispatched += 1;
                    self.complete_flow(ft, fk);
                }
                (Some((t, _, ev, shard)), _) => {
                    self.events_dispatched += 1;
                    self.queues[shard as usize].pop();
                    self.note_dispatch(shard);
                    self.now = SimTime(t.max(self.now.ns()));
                    self.handle_event(ev);
                }
                (None, Some((ft, fk))) => {
                    self.events_dispatched += 1;
                    self.complete_flow(ft, fk);
                }
            }
        }
        if self.finished < self.jobs.len() {
            return Err(self.deadlock_error());
        }
        Ok(RunOutcome::Completed)
    }

    /// Names the stuck jobs and what each is waiting on (first few, with
    /// unfinished deps and lost/missing input files called out).
    fn deadlock_error(&self) -> SimError {
        const MAX_LISTED: usize = 8;
        let mut stuck = Vec::new();
        for (i, job) in self.jobs.iter().enumerate() {
            if matches!(job.state, JobState::Done | JobState::Failed) {
                continue;
            }
            if stuck.len() >= MAX_LISTED {
                break;
            }
            let mut waiting_on = Vec::new();
            for &d in &job.deps {
                let dj = &self.jobs[d as usize];
                match dj.state {
                    JobState::Done => {}
                    JobState::Failed => waiting_on.push(format!("failed dep '{}'", dj.name)),
                    _ => waiting_on.push(format!("dep '{}'", dj.name)),
                }
            }
            // The next few actions reveal unreadable inputs.
            for a in job.actions.iter().take(4) {
                let file = match a {
                    Action::Read { file, .. } | Action::Stage { file, .. } => file,
                    Action::Open { file, write: false } => file,
                    _ => continue,
                };
                match self.fs.lookup(file) {
                    None => waiting_on.push(format!("missing file {file}")),
                    Some(idx) if self.fs.is_lost(idx) => {
                        waiting_on.push(format!("lost file {file}"));
                    }
                    Some(_) => {}
                }
            }
            if !self.node_up[job.node as usize] {
                waiting_on.push(format!("node {} down", job.node));
            }
            let state = match job.state {
                JobState::WaitingDeps => "waiting-deps",
                JobState::Queued => "queued",
                JobState::Running => "running",
                JobState::Done | JobState::Failed => unreachable!("filtered above"),
            };
            stuck.push(StuckJob {
                job: i as u32,
                name: job.name.clone(),
                node: job.node,
                state,
                waiting_on,
            });
        }
        SimError::Deadlock { pending: self.jobs.len() - self.finished, stuck }
    }

    fn complete_flow(&mut self, at: SimTime, key: FlowKey) {
        self.now = SimTime(at.ns().max(self.now.ns()));
        let (owner, elapsed, bytes) = self.net.complete(self.now, key);
        self.stats.total_moved += bytes;
        let j = owner.job as usize;
        // Flow completions are attributed to the owning job's shard for
        // window accounting (the flow itself may span several shards).
        let shard = self.plan.shard_of_node(self.jobs[j].node);
        self.note_dispatch(shard);
        let job = &mut self.jobs[j];
        job.breakdown.add(owner.tag, elapsed);
        job.moved_bytes += bytes;
        if let Some(p) = job.flows.iter().position(|&k| k == key) {
            job.flows.swap_remove(p);
        }
        if let Some(o) = self.obs.as_deref_mut() {
            o.flow_completed(key.0, elapsed, self.now.ns());
        }
        if owner.background {
            return; // buffered-write drain: nothing waits on it
        }
        let job = &mut self.jobs[j];
        job.pending_flows -= 1;
        if job.pending_flows == 0 {
            self.finish_io(owner.job);
        }
    }

    fn handle_event(&mut self, ev: Event) {
        match ev {
            Event::Arrive(j) => {
                let job = &mut self.jobs[j as usize];
                // A dependency completing at the same timestamp may have
                // already queued this job; only queue from WaitingDeps.
                if job.deps_left == 0 && job.state == JobState::WaitingDeps {
                    job.state = JobState::Queued;
                    let node = job.node;
                    self.ready[node as usize].push_back(j);
                    self.obs_job_queued(j);
                    self.try_start(node);
                }
            }
            // Compute/open/latency events of a job failed in the meantime
            // are stale; only a Running job advances.
            Event::ComputeDone(j) | Event::OpenDone(j) => {
                if self.jobs[j as usize].state == JobState::Running {
                    self.advance(j);
                }
            }
            Event::IoLatencyDone(j) => {
                if self.jobs[j as usize].state == JobState::Running {
                    self.launch_flows(j);
                }
            }
            Event::CapacityChange(idx) => {
                let (r, capacity) = self.capacity_changes[idx as usize];
                self.net.set_capacity(self.now, r, capacity);
                if let Some(o) = self.obs.as_deref_mut() {
                    let track = o.res_track(r);
                    o.capacity_changed(track, capacity, self.now.ns());
                }
            }
            Event::NodeCrash(i) => self.on_node_crash(i),
            Event::NodeRecover(i) => {
                let node = self.faults.crashes[i as usize].node;
                if node as usize >= self.node_up.len() {
                    self.fatal = Some(SimError::BadNode(node));
                    return;
                }
                if !self.node_up[node as usize] {
                    self.node_up[node as usize] = true;
                    // Every core is free: the crash failed all running jobs.
                    self.free_cores[node as usize] = self.cluster.nodes[node as usize].cores;
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.node_recovered(node, self.now.ns());
                    }
                    self.try_start(node);
                }
            }
        }
    }

    fn on_node_crash(&mut self, i: u32) {
        let crash = self.faults.crashes[i as usize];
        let node = crash.node;
        if node as usize >= self.node_up.len() {
            // Crash (and the cache invalidation it implies) aimed at a node
            // outside the cluster: typed error instead of an index panic.
            self.fatal = Some(SimError::BadNode(node));
            return;
        }
        if !self.node_up[node as usize] {
            return; // overlapping crash windows: already down
        }
        self.stats.crashes += 1;
        self.node_up[node as usize] = false;
        self.free_cores[node as usize] = 0;
        let cache_invalidated = self.cache.is_some();
        if let Some(o) = self.obs.as_deref_mut() {
            o.node_crashed(node, cache_invalidated, self.now.ns());
        }
        let running: Vec<u32> = (0..self.jobs.len() as u32)
            .filter(|&j| {
                let job = &self.jobs[j as usize];
                job.node == node && job.state == JobState::Running
            })
            .collect();
        for j in running {
            self.fail_job(j, FailureCause::NodeCrash { node });
        }
        // Node-local replicas and node-wide cache contents are gone.
        let loss = self.fs.fail_node(node);
        self.stats.lost_replicas += loss.replicas_lost;
        self.stats.lost_files += loss.lost_files.len() as u32;
        self.stats.lost_bytes += loss.bytes;
        if let Some(c) = &mut self.cache {
            c.invalidate_node(node);
        }
        if crash.down_ns != u64::MAX {
            self.push_event(self.now.add_ns(crash.down_ns), Event::NodeRecover(i));
        }
    }

    /// Fails a running job attempt: cancels its in-flight flows (progress
    /// made so far counts as wasted transfer), frees its core, and queues a
    /// [`JobFailure`] for the next `run_to_incident` return.
    fn fail_job(&mut self, j: u32, cause: FailureCause) {
        debug_assert_eq!(self.jobs[j as usize].state, JobState::Running);
        let node = self.jobs[j as usize].node;
        let flows = std::mem::take(&mut self.jobs[j as usize].flows);
        for key in flows {
            if self.net.bytes_of(key).is_none() {
                // Flow-accounting invariant broken (was a panic): surface a
                // typed error on the next `run_to_incident` return instead
                // of tearing the process down mid-event.
                self.fatal = Some(SimError::UntrackedFlow { job: j, key: key.0 });
                continue;
            }
            let (owner, elapsed, remaining, total) = self.net.cancel(self.now, key);
            let moved = (total - remaining).max(0.0);
            self.stats.total_moved += moved;
            let job = &mut self.jobs[j as usize];
            job.breakdown.add(owner.tag, elapsed);
            job.moved_bytes += moved;
            if let Some(o) = self.obs.as_deref_mut() {
                o.flow_cancelled(key.0, self.now.ns());
            }
        }
        let job = &mut self.jobs[j as usize];
        job.state = JobState::Failed;
        job.end = Some(self.now);
        job.io = None;
        job.pending_flows = 0;
        if let Some(ctx) = job.ctx.take() {
            ctx.finish(self.now.ns());
        }
        let started = job.start.map_or(self.now, |s| s);
        self.stats.wasted_ns += self.now.since(started);
        self.stats.wasted_bytes += job.moved_bytes;
        self.stats.failed_attempts += 1;
        if let Some(o) = self.obs.as_deref_mut() {
            o.job_failed(j, self.now.ns());
        }
        self.finished += 1;
        let name = job.name.clone();
        self.pending_failures.push(JobFailure {
            job: JobId(j),
            name,
            node,
            at_ns: self.now.ns(),
            cause,
        });
        // A core frees up unless the node itself went down.
        if self.node_up[node as usize] {
            self.free_cores[node as usize] += 1;
            self.try_start(node);
        }
    }

    /// Schedule-independent transient-error check for the job's next I/O
    /// operation; on a hit the attempt fails. Returns true when the caller
    /// must abandon the operation.
    fn io_faulted(&mut self, j: u32, file: &str) -> bool {
        let op = self.jobs[j as usize].io_ops;
        self.jobs[j as usize].io_ops += 1;
        if self.faults.io_op_fails(j, op) {
            self.stats.transient_io_errors += 1;
            if let Some(o) = self.obs.as_deref_mut() {
                o.io_error(j, file, self.now.ns());
            }
            self.fail_job(j, FailureCause::IoError { file: file.to_owned() });
            true
        } else {
            false
        }
    }

    fn try_start(&mut self, node: u32) {
        if !self.node_up[node as usize] {
            return;
        }
        while self.free_cores[node as usize] > 0 {
            let Some(j) = self.ready[node as usize].pop_front() else { break };
            self.free_cores[node as usize] -= 1;
            let job = &mut self.jobs[j as usize];
            job.state = JobState::Running;
            job.start = Some(self.now);
            if let Some(m) = &self.monitor {
                job.ctx = Some(m.begin_task_logical(&job.name, &job.logical.clone(), self.now.ns()));
            }
            self.obs_job_started(j);
            self.advance(j);
        }
    }

    /// Executes the job's next action (or completes it).
    fn advance(&mut self, j: u32) {
        let Some(action) = self.jobs[j as usize].actions.pop_front() else {
            self.complete_job(j);
            return;
        };
        match action {
            Action::Compute { ns } => {
                self.jobs[j as usize].breakdown.add(FlowTag::Compute, ns);
                self.push_event(self.now.add_ns(ns), Event::ComputeDone(j));
            }
            Action::Open { file, write } => self.do_open(j, &file, write),
            Action::Read { file, offset, len } => self.do_read(j, &file, offset, len),
            Action::Write { file, len, tier } => self.do_write(j, &file, len, tier),
            Action::Close { file } => {
                self.do_close(j, &file);
                self.advance(j);
            }
            Action::Stage { file, to, from, tag } => self.do_stage(j, &file, to, from, tag),
        }
    }

    fn complete_job(&mut self, j: u32) {
        let node;
        {
            let job = &mut self.jobs[j as usize];
            debug_assert_eq!(job.state, JobState::Running);
            job.state = JobState::Done;
            job.end = Some(self.now);
            node = job.node;
            if let Some(ctx) = job.ctx.take() {
                ctx.finish(self.now.ns());
            }
            if job.recovery {
                self.stats.recovery_bytes += job.moved_bytes;
            }
        }
        self.finished += 1;
        self.free_cores[node as usize] += 1;
        if let Some(o) = self.obs.as_deref_mut() {
            o.job_completed(j, self.now.ns());
        }

        let dependents = std::mem::take(&mut self.jobs[j as usize].dependents);
        self.release_dependents(dependents);
        // A replacement completing stands in for every failed attempt it
        // (transitively) replaces: each one's dependents are released
        // exactly once (`take` empties the list), so work that depended on
        // any attempt in the chain proceeds once one of them succeeds.
        let mut replaced = self.jobs[j as usize].replaces;
        while let Some(orig) = replaced {
            let orig_deps = std::mem::take(&mut self.jobs[orig as usize].dependents);
            self.release_dependents(orig_deps);
            replaced = self.jobs[orig as usize].replaces;
        }
        self.try_start(node);
        if self.pause_on_job_complete {
            self.pause_pending = true;
        }
    }

    fn release_dependents(&mut self, dependents: Vec<u32>) {
        for d in dependents {
            let dep = &mut self.jobs[d as usize];
            dep.deps_left -= 1;
            if dep.deps_left == 0 && dep.state == JobState::WaitingDeps && dep.submit_delay_ns <= self.now.ns() {
                dep.state = JobState::Queued;
                let n = dep.node;
                self.ready[n as usize].push_back(d);
                self.obs_job_queued(d);
                self.try_start(n);
            }
        }
    }

    // ---- file helpers ----

    fn tier_spec(&self, kind: TierKind) -> &crate::storage::TierSpec {
        self.cluster.tier(kind).expect("tier present on cluster")
    }

    /// Checks a single tier reference against the cluster (kind provisioned,
    /// node index in range).
    fn check_tier(&self, tier: TierRef) -> Result<(), SimError> {
        if !self.cluster.has_tier(tier.kind) {
            return Err(SimError::NoSuchTier(tier.kind.label().to_owned()));
        }
        match tier.node {
            Some(n) if (n as usize) >= self.cluster.node_count() => Err(SimError::BadNode(n)),
            _ => Ok(()),
        }
    }

    /// Validates every externally supplied tier reference — file replicas
    /// plus `Write`/`Stage` targets in not-yet-executed actions — so a spec
    /// naming a tier the cluster does not provide surfaces as
    /// [`SimError::NoSuchTier`] instead of a panic deep in the run.
    fn validate_tiers(&self) -> Result<(), SimError> {
        for i in 0..self.fs.file_count() {
            for &r in &self.fs.meta(FileIdx(i as u32)).replicas {
                self.check_tier(r)?;
            }
        }
        for job in &self.jobs {
            for a in &job.actions {
                match a {
                    Action::Write { tier: Some(t), .. } => self.check_tier(*t)?,
                    Action::Stage { to, from, .. } => {
                        self.check_tier(*to)?;
                        if let Some(f) = from {
                            self.check_tier(*f)?;
                        }
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    /// Resources along the read path from `tier` to `node`.
    fn read_path(&self, tier: TierRef, node: u32) -> Vec<ResourceId> {
        match (tier.kind.is_node_local(), tier.node) {
            (true, Some(m)) if m == node => vec![self.res.node_tier[m as usize][&tier.kind]],
            (true, Some(m)) => vec![
                self.res.node_tier[m as usize][&tier.kind],
                self.res.nic[m as usize],
                self.res.nic[node as usize],
            ],
            _ => vec![self.res.shared[&tier.kind], self.res.nic[node as usize]],
        }
    }

    /// Tag for a read served by `tier` (no cache involvement).
    fn read_tag(&self, tier: TierRef) -> FlowTag {
        if tier.kind.is_remote() {
            FlowTag::NetworkRead
        } else if tier.kind.is_node_local() {
            FlowTag::LocalRead
        } else {
            FlowTag::SharedRead
        }
    }

    /// Write-bandwidth asymmetry: flows carry "read-equivalent" bytes, so a
    /// write of `len` on a tier with write_bw < read_bw is inflated.
    fn write_equiv_bytes(&self, tier: TierKind, len: u64) -> f64 {
        let spec = self.tier_spec(tier);
        len as f64 * (spec.read_bw / spec.write_bw)
    }

    /// Ensures the job has a trace fd for `file`; returns it. Implicit opens
    /// use read-write mode with the current size as hint.
    fn ensure_fd(&mut self, j: u32, file: FileIdx) -> Option<dfl_trace::handle::Fd> {
        let size = self.fs.meta(file).size;
        let path = self.fs.meta(file).path.clone();
        let job = &mut self.jobs[j as usize];
        if let Some(&fd) = job.fds.get(&file) {
            return Some(fd);
        }
        let ctx = job.ctx.as_ref()?;
        let fd = ctx.open(&path, OpenMode::ReadWrite, Some(size), self.now.ns());
        job.fds.insert(file, fd);
        Some(fd)
    }

    // ---- actions ----

    /// Raises a hard (spec-level) error: the current `run_to_incident` call
    /// returns it before processing the next event.
    fn raise_fatal(&mut self, j: u32, file: &str) {
        self.fatal = Some(SimError::MissingFile {
            file: file.to_owned(),
            job: self.jobs[j as usize].name.clone(),
        });
    }

    fn do_open(&mut self, j: u32, file: &str, write: bool) {
        let node = self.jobs[j as usize].node;
        let idx = match self.fs.lookup(file) {
            Some(i) if !write => i,
            _ if write => {
                let tier = TierRef::shared(self.cluster.default_tier);
                self.fs.create_for_write(file, tier)
            }
            _ => {
                self.raise_fatal(j, file);
                return;
            }
        };
        if !write && self.fs.is_lost(idx) {
            self.fail_job(j, FailureCause::LostFile { file: file.to_owned() });
            return;
        }
        let tier = self.fs.best_replica(idx, node);
        let open_ns = self.tier_spec(tier.kind).open_ns;

        let size = self.fs.meta(idx).size;
        let job = &mut self.jobs[j as usize];
        if let Some(ctx) = &job.ctx {
            let mode = if write { OpenMode::ReadWrite } else { OpenMode::Read };
            let fd = ctx.open(file, mode, Some(size), self.now.ns());
            job.fds.insert(idx, fd);
        }
        job.cursor.insert(idx, 0);
        job.breakdown.add(FlowTag::Metadata, open_ns);
        self.push_event(self.now.add_ns(open_ns), Event::OpenDone(j));
    }

    fn do_close(&mut self, j: u32, file: &str) {
        let Some(idx) = self.fs.lookup(file) else { return };
        let job = &mut self.jobs[j as usize];
        if let (Some(ctx), Some(fd)) = (&job.ctx, job.fds.remove(&idx)) {
            let _ = ctx.close(fd, self.now.ns());
        }
    }

    fn do_read(&mut self, j: u32, file: &str, offset: Option<u64>, len: u64) {
        if self.io_faulted(j, file) {
            return;
        }
        let Some(idx) = self.fs.lookup(file) else {
            self.raise_fatal(j, file);
            return;
        };
        if self.fs.is_lost(idx) {
            self.fail_job(j, FailureCause::LostFile { file: file.to_owned() });
            return;
        }
        let node = self.jobs[j as usize].node;
        let size = self.fs.meta(idx).size;
        let off = offset.unwrap_or_else(|| *self.jobs[j as usize].cursor.get(&idx).unwrap_or(&0));
        let off = off.min(size);
        let n = if len == 0 { size - off } else { len.min(size - off) };
        let tier = self.fs.best_replica(idx, node);

        // Integrity: decide up front (schedule-independently) whether this
        // read observes corrupt data — stored on the serving replica, or
        // flipped in flight — and whether this read verifies its digest.
        let mut verify_ns = 0;
        if self.verify != VerifyPolicy::Off || self.faults.has_corruption() {
            let op = self.jobs[j as usize].io_ops - 1;
            self.jobs[j as usize].reads_seen += 1;
            let reads_seen = self.jobs[j as usize].reads_seen;
            let verified = match self.verify {
                VerifyPolicy::OnRead => true,
                VerifyPolicy::Sample(k) if k > 0 => reads_seen % u64::from(k) == 0,
                _ => false,
            };
            let stored_root = self.fs.replica_corrupt(idx, tier);
            let flipped = self.faults.read_corrupts(j, op);
            if stored_root.is_some() || flipped {
                if verified {
                    let root = stored_root.map(|r| self.fs.meta(r).path.clone());
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.corruption_detected(j, file, self.now.ns());
                    }
                    self.stats.corruptions_detected += 1;
                    self.fail_job(
                        j,
                        FailureCause::CorruptData { file: file.to_owned(), root },
                    );
                    return;
                }
                // Silent: the job consumed bad bytes; everything it writes
                // from here is tainted. A transient flip with no stored
                // root conservatively roots the taint at this file.
                let job = &mut self.jobs[j as usize];
                if job.taint.is_none() {
                    job.taint = stored_root.or(Some(idx));
                }
            } else if verified {
                // Clean verified read: pay the checksum pass (~4 bytes/ns).
                verify_ns = n / 4;
                self.jobs[j as usize].breakdown.add(FlowTag::Metadata, verify_ns);
                self.stats.verified_bytes += n;
                if self.fs.clear_reverify(idx) {
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.reverified(file, self.now.ns());
                    }
                }
            }
        }

        self.ensure_fd(j, idx);

        let mut launch: Vec<(Vec<ResourceId>, f64, FlowTag)> = Vec::new();
        let mut latency = self.tier_spec(tier.kind).latency_ns;

        // A cache-less config never enters the cache branch: the access is
        // bound inside the `if let`, so there is no unwrap to reach.
        let cache_result = match &mut self.cache {
            Some(cache)
                if n > 0 && (self.cache_origins == CacheOrigins::All || tier.kind.is_remote()) =>
            {
                Some(cache.access(j, node, idx.0, off, n))
            }
            _ => None,
        };
        if let Some(result) = cache_result {
            latency = 0;
            for (lvl, &bytes) in result.level_bytes.iter().enumerate() {
                if bytes == 0 {
                    continue;
                }
                latency = latency.max(self.cache_lat[lvl]);
                let path = match &self.res.cache_levels[lvl] {
                    CacheLevelRes::PerNode(v) => vec![v[node as usize]],
                    CacheLevelRes::Shared(r) => vec![*r, self.res.nic[node as usize]],
                };
                if let Some(o) = self.obs.as_deref_mut() {
                    let track = o.res_track(path[0]);
                    o.cache_hit(track, file, bytes, self.now.ns());
                }
                let tag = match lvl {
                    0 => FlowTag::CacheL1,
                    1 => FlowTag::CacheL2,
                    2 => FlowTag::CacheL3,
                    _ => FlowTag::CacheL4,
                };
                launch.push((path, bytes as f64, tag));
            }
            for (lvl, &evicted) in result.evictions.iter().enumerate() {
                if evicted == 0 {
                    continue;
                }
                let r = match &self.res.cache_levels[lvl] {
                    CacheLevelRes::PerNode(v) => v[node as usize],
                    CacheLevelRes::Shared(r) => *r,
                };
                if let Some(o) = self.obs.as_deref_mut() {
                    let track = o.res_track(r);
                    o.cache_evicted(track, evicted, self.now.ns());
                }
            }
            if result.miss_bytes > 0 {
                latency = latency.max(self.tier_spec(tier.kind).latency_ns);
                let path = self.read_path(tier, node);
                if let Some(o) = self.obs.as_deref_mut() {
                    let track = o.res_track(path[0]);
                    o.cache_miss(track, file, result.miss_bytes, self.now.ns());
                }
                launch.push((path, result.miss_bytes as f64, self.read_tag(tier)));
            }
        } else if n > 0 {
            launch.push((self.read_path(tier, node), n as f64, self.read_tag(tier)));
        }

        let job = &mut self.jobs[j as usize];
        job.io = Some(PendingIo {
            kind: IoKind::Read,
            file: idx,
            offset: off,
            len: n,
            started: self.now,
            stage_to: None,
            corrupt: None,
            launch,
        });
        self.push_event(
            self.now.add_ns(latency.saturating_add(verify_ns)),
            Event::IoLatencyDone(j),
        );
    }

    fn do_write(&mut self, j: u32, file: &str, len: u64, tier: Option<TierRef>) {
        if self.io_faulted(j, file) {
            return;
        }
        let node = self.jobs[j as usize].node;
        // Single placement decision: a fresh file is created once on the
        // requested (or default) tier; an explicit tier re-places an
        // existing file only while it still has no data.
        let idx = match self.fs.lookup(file) {
            Some(i) => {
                if let Some(t) = tier {
                    if self.fs.meta(i).size == 0 {
                        self.fs.create_for_write(file, t);
                    }
                }
                i
            }
            None => {
                let t = tier.unwrap_or(TierRef::shared(self.cluster.default_tier));
                self.fs.create_for_write(file, t)
            }
        };
        if self.fs.is_lost(idx) {
            // Appending to a file whose replicas were all lost: the partial
            // data is gone, so the attempt fails (a retry re-creates the
            // file from the top via its open-for-write).
            self.fail_job(j, FailureCause::LostFile { file: file.to_owned() });
            return;
        }
        self.ensure_fd(j, idx);

        let dst = self.fs.meta(idx).replicas[0];
        let offset = self.fs.meta(idx).size;

        // Integrity: does this write land corrupt? Either the writer
        // already consumed bad bytes (taint propagation), or the fault
        // plan silently flips this write. Decided here — not at flow
        // completion — so the outcome is schedule-independent. Only a
        // direct injection on a currently-clean replica counts as a new
        // corruption (propagation rides the original root's count).
        let corrupt = if self.faults.has_corruption() || self.jobs[j as usize].taint.is_some() {
            let op = self.jobs[j as usize].io_ops - 1;
            match self.jobs[j as usize].taint {
                Some(root) => Some(root),
                None => {
                    let direct = self.faults.write_corrupts(j, op)
                        || (self.faults.corrupts_file(file)
                            && self.fs.meta(idx).version == 1);
                    if direct {
                        if self.fs.replica_corrupt(idx, dst).is_none() {
                            self.stats.corruptions_injected += 1;
                            if let Some(o) = self.obs.as_deref_mut() {
                                o.corruption_injected(j, file, self.now.ns());
                            }
                        }
                        Some(idx)
                    } else {
                        None
                    }
                }
            }
        } else {
            None
        };

        if self.write_buffering && len > 0 {
            // Buffered write: the task continues immediately; the drain runs
            // as a background flow accounted to the job.
            let path = self.read_path(dst, node);
            let bytes = self.write_equiv_bytes(dst.kind, len);
            let tag = if self.jobs[j as usize].recovery { FlowTag::Recovery } else { FlowTag::Write };
            let endpoints = self.obs.is_some().then(|| {
                let first = path[0];
                let src = self.net.resource(first).name.clone();
                let dst = self.net.resource(*path.last().expect("non-empty path")).name.clone();
                (first, src, dst)
            });
            let key = self.net.start(
                self.now,
                &path,
                bytes,
                FlowOwner { job: j, tag, background: true },
            );
            self.jobs[j as usize].flows.push(key);
            if let (Some((first, src, dst)), Some(o)) = (endpoints, self.obs.as_deref_mut()) {
                let track = o.res_track(first);
                o.flow_started(
                    key.0,
                    track,
                    tag.label(),
                    j,
                    src,
                    dst,
                    bytes.round() as u64,
                    self.now.ns(),
                );
            }
            self.fs.grow(idx, len);
            if let Some(root) = corrupt {
                self.fs.mark_corrupt(idx, dst, root);
            }
            let job = &mut self.jobs[j as usize];
            if let (Some(ctx), Some(&fd)) = (&job.ctx, job.fds.get(&idx)) {
                let _ = ctx.write_at(fd, offset, len, IoTiming::new(self.now.ns(), 0));
            }
            self.advance(j);
            return;
        }

        let latency = self.tier_spec(dst.kind).latency_ns;
        let launch = if len > 0 {
            vec![(
                self.read_path(dst, node),
                self.write_equiv_bytes(dst.kind, len),
                FlowTag::Write,
            )]
        } else {
            Vec::new()
        };

        let job = &mut self.jobs[j as usize];
        job.io = Some(PendingIo {
            kind: IoKind::Write,
            file: idx,
            offset,
            len,
            started: self.now,
            stage_to: None,
            corrupt,
            launch,
        });
        self.push_event(self.now.add_ns(latency), Event::IoLatencyDone(j));
    }

    fn do_stage(&mut self, j: u32, file: &str, to: TierRef, from: Option<TierRef>, tag: FlowTag) {
        if self.io_faulted(j, file) {
            return;
        }
        let Some(idx) = self.fs.lookup(file) else {
            self.raise_fatal(j, file);
            return;
        };
        if self.fs.is_lost(idx) {
            self.fail_job(j, FailureCause::LostFile { file: file.to_owned() });
            return;
        }
        let node = self.jobs[j as usize].node;
        let size = self.fs.meta(idx).size;
        let src = from.unwrap_or_else(|| self.fs.best_replica(idx, node));
        if src == to || size == 0 {
            // Already there (or empty): record the replica and move on.
            self.fs.add_replica(idx, to);
            self.advance(j);
            return;
        }
        // Integrity: a transfer either carries stored corruption from the
        // source replica to the destination, or flips in flight (replica
        // divergence: the destination lands corrupt while the source stays
        // clean). `OnTransfer` checks the source digest before copying.
        let mut verify_ns = 0;
        let mut corrupt = None;
        if self.verify != VerifyPolicy::Off || self.faults.has_corruption() {
            let op = self.jobs[j as usize].io_ops - 1;
            let stored_root = self.fs.replica_corrupt(idx, src);
            let flipped = self.faults.transfer_corrupts(j, op);
            if flipped && stored_root.is_none() {
                self.stats.corruptions_injected += 1;
                if let Some(o) = self.obs.as_deref_mut() {
                    o.corruption_injected(j, file, self.now.ns());
                }
            }
            if self.verify == VerifyPolicy::OnTransfer {
                if stored_root.is_some() || flipped {
                    let root = stored_root.map(|r| self.fs.meta(r).path.clone());
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.corruption_detected(j, file, self.now.ns());
                    }
                    self.stats.corruptions_detected += 1;
                    self.fail_job(
                        j,
                        FailureCause::CorruptData { file: file.to_owned(), root },
                    );
                    return;
                }
                verify_ns = size / 4;
                self.jobs[j as usize].breakdown.add(FlowTag::Metadata, verify_ns);
                self.stats.verified_bytes += size;
                if self.fs.clear_reverify(idx) {
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.reverified(file, self.now.ns());
                    }
                }
            } else {
                corrupt = stored_root.or(if flipped { Some(idx) } else { None });
            }
        }

        let mut path = self.read_path(src, node);
        for r in self.read_path(to, node) {
            if !path.contains(&r) {
                path.push(r);
            }
        }
        let latency = self
            .tier_spec(src.kind)
            .latency_ns
            .max(self.tier_spec(to.kind).latency_ns)
            .saturating_add(verify_ns);

        let job = &mut self.jobs[j as usize];
        job.io = Some(PendingIo {
            kind: IoKind::Stage,
            file: idx,
            offset: 0,
            len: size,
            started: self.now,
            stage_to: Some(to),
            corrupt,
            launch: vec![(path, size as f64, tag)],
        });
        self.push_event(self.now.add_ns(latency), Event::IoLatencyDone(j));
    }

    fn launch_flows(&mut self, j: u32) {
        let launch = {
            let job = &mut self.jobs[j as usize];
            match job.io.as_mut() {
                Some(io) => std::mem::take(&mut io.launch),
                None => {
                    self.fatal = Some(SimError::CorruptState("flow launch with no pending io"));
                    return;
                }
            }
        };
        if launch.is_empty() {
            self.finish_io(j);
            return;
        }
        self.jobs[j as usize].pending_flows = launch.len();
        let recovery = self.jobs[j as usize].recovery;
        for (path, bytes, tag) in launch {
            let tag = if recovery { FlowTag::Recovery } else { tag };
            let endpoints = self.obs.is_some().then(|| {
                let first = path[0];
                let src = self.net.resource(first).name.clone();
                let dst = self.net.resource(*path.last().expect("non-empty path")).name.clone();
                (first, src, dst)
            });
            let key =
                self.net.start(self.now, &path, bytes, FlowOwner { job: j, tag, background: false });
            self.jobs[j as usize].flows.push(key);
            if let (Some((first, src, dst)), Some(o)) = (endpoints, self.obs.as_deref_mut()) {
                let track = o.res_track(first);
                o.flow_started(
                    key.0,
                    track,
                    tag.label(),
                    j,
                    src,
                    dst,
                    bytes.round() as u64,
                    self.now.ns(),
                );
            }
        }
    }

    fn finish_io(&mut self, j: u32) {
        let Some(io) = self.jobs[j as usize].io.take() else {
            self.fatal = Some(SimError::CorruptState("io completion with no pending io"));
            return;
        };
        let timing = IoTiming::new(io.started.ns(), self.now.since(io.started));
        match io.kind {
            IoKind::Read => {
                let job = &mut self.jobs[j as usize];
                if let (Some(ctx), Some(&fd)) = (&job.ctx, job.fds.get(&io.file)) {
                    let _ = ctx.read_at(fd, io.offset, io.len, timing);
                }
                job.cursor.insert(io.file, io.offset + io.len);
            }
            IoKind::Write => {
                self.fs.grow(io.file, io.len);
                if let Some(root) = io.corrupt {
                    let dst = self.fs.meta(io.file).replicas[0];
                    self.fs.mark_corrupt(io.file, dst, root);
                }
                let job = &mut self.jobs[j as usize];
                if let (Some(ctx), Some(&fd)) = (&job.ctx, job.fds.get(&io.file)) {
                    let _ = ctx.write_at(fd, io.offset, io.len, timing);
                }
            }
            IoKind::Stage => {
                let Some(to) = io.stage_to else {
                    self.fatal =
                        Some(SimError::CorruptState("stage completion with no destination"));
                    return;
                };
                self.fs.add_replica(io.file, to);
                if let Some(root) = io.corrupt {
                    self.fs.mark_corrupt(io.file, to, root);
                }
            }
        }
        self.advance(j);
    }

    // ---- failure / straggler injection ----

    /// The bandwidth resource backing a tier instance.
    pub fn tier_resource(&self, tier: TierRef) -> ResourceId {
        match tier.node {
            Some(n) => self.res.node_tier[n as usize][&tier.kind],
            None => self.res.shared[&tier.kind],
        }
    }

    /// The NIC resource of a node.
    pub fn nic_resource(&self, node: u32) -> ResourceId {
        self.res.nic[node as usize]
    }

    /// Schedules a capacity change (straggler/degradation injection) at
    /// `at_ns`. Takes effect mid-run: in-flight transfers keep their
    /// progress and re-profile at the new capacity.
    pub fn schedule_capacity_change(&mut self, at_ns: u64, resource: ResourceId, capacity: f64) {
        assert!(capacity > 0.0);
        let idx = self.capacity_changes.len() as u32;
        self.capacity_changes.push((resource, capacity));
        self.push_event(SimTime(at_ns), Event::CapacityChange(idx));
    }

    // ---- integrity / quarantine ----

    /// Whether any replica of `path` is currently corrupt.
    pub fn file_corrupt(&self, path: &str) -> bool {
        self.fs.lookup(path).is_some_and(|i| self.fs.any_corrupt(i))
    }

    /// Quarantines `path`: every replica (clean or corrupt — once one
    /// replica diverges none can be trusted without re-verification) is
    /// taken out of service and the file is flagged for re-verification on
    /// its next verified read. Returns the bytes quarantined; no-op for
    /// unknown or already-empty files.
    pub fn quarantine_file(&mut self, path: &str) -> u64 {
        let Some(idx) = self.fs.lookup(path) else { return 0 };
        if self.fs.meta(idx).replicas.is_empty() {
            return 0;
        }
        let bytes = self.fs.quarantine(idx);
        self.stats.quarantined_files += 1;
        self.stats.quarantined_bytes += bytes;
        if let Some(o) = self.obs.as_deref_mut() {
            o.quarantined(path, bytes, self.now.ns());
        }
        bytes
    }

    /// Fails a running job attempt that sits inside a taint cone (its
    /// in-progress work consumed data rooted at `root`). Returns `false`
    /// when the job is not currently running — completed or failed
    /// attempts are the coordination layer's problem (re-execution).
    pub fn quarantine_job(&mut self, id: JobId, root: &str) -> bool {
        match self.jobs.get(id.0 as usize) {
            Some(job) if job.state == JobState::Running => {
                self.fail_job(
                    id.0,
                    FailureCause::CorruptData {
                        file: root.to_owned(),
                        root: Some(root.to_owned()),
                    },
                );
                true
            }
            _ => false,
        }
    }

    // ---- observability ----

    /// Emits periodic utilization/queue-depth samples up to `horizon` (the
    /// next event time): per-resource active-flow counts and per-node queue
    /// depth and busy cores. State persists across `run_to_incident`
    /// returns, so recovery-driven re-entries keep one steady cadence.
    fn take_samples_until(&mut self, horizon: u64) {
        let Some(o) = self.obs.as_deref_mut() else { return };
        let Some(every) = o.sample_every else { return };
        while o.next_sample <= horizon {
            let t = o.next_sample;
            for r in 0..self.net.resource_count() {
                let id = ResourceId(r as u32);
                let track = o.res_track(id);
                o.rec.sample(track, t, "active_flows", f64::from(self.net.load_of(id)));
            }
            for n in 0..self.cluster.node_count() {
                let track = o.node_track(n as u32);
                o.rec.sample(track, t, "queue_depth", self.ready[n].len() as f64);
                let busy = self.cluster.nodes[n].cores - self.free_cores[n];
                o.rec.sample(track, t, "busy_cores", f64::from(busy));
            }
            if o.has_watchdog() {
                let depths: Vec<u64> =
                    (0..self.cluster.node_count()).map(|n| self.ready[n].len() as u64).collect();
                o.watchdog_sample(&depths, t);
            }
            o.next_sample += every;
        }
    }

    fn obs_job_queued(&mut self, j: u32) {
        let Some(o) = self.obs.as_deref_mut() else { return };
        let job = &self.jobs[j as usize];
        o.job_queued(j, job.node, &job.name, self.now.ns());
    }

    fn obs_job_started(&mut self, j: u32) {
        let Some(o) = self.obs.as_deref_mut() else { return };
        let job = &self.jobs[j as usize];
        let kind = if job.recovery {
            SpanKind::Recovery
        } else if job.replaces.is_some() {
            SpanKind::Retry
        } else {
            SpanKind::Run
        };
        o.job_started(j, job.node, &job.name, kind, self.now.ns());
    }

    /// Observability layer, when enabled (engine stage spans, custom
    /// metrics).
    pub fn obs_mut(&mut self) -> Option<&mut SimObs> {
        self.obs.as_deref_mut()
    }

    /// Read-only view of the observability layer, when enabled.
    pub fn obs(&self) -> Option<&SimObs> {
        self.obs.as_deref()
    }

    /// Attaches a live subscriber to the timeline recorder; `None` when
    /// observability is disabled. See [`dfl_obs::Recorder::subscribe`].
    pub fn subscribe(&mut self, capacity: usize) -> Option<dfl_obs::EventStream> {
        self.obs.as_deref_mut().map(|o| o.subscribe(capacity))
    }

    /// Watchdog diagnoses fired so far (empty when observability or
    /// watchdogs are disabled).
    pub fn diagnoses(&self) -> &[dfl_obs::Diagnosis] {
        self.obs.as_deref().map_or(&[], SimObs::diagnoses)
    }

    /// Records an engine-stage span on the stage track; no-op when
    /// observability is disabled.
    pub fn record_stage_span(&mut self, name: &str, start_ns: u64, end_ns: u64) {
        if let Some(o) = self.obs.as_deref_mut() {
            let track = o.stage_track();
            o.rec.record_span(
                track,
                start_ns,
                end_ns,
                name,
                SpanKind::Stage,
                dfl_obs::SpanMeta::default(),
            );
        }
    }

    /// Finalizes and takes the recorded timeline. Returns `None` when
    /// observability was disabled or the timeline was already taken;
    /// recording stops once taken.
    pub fn take_timeline(&mut self) -> Option<Timeline> {
        self.obs.take().map(|o| o.finish(self.now.ns()))
    }

    // ---- reports ----

    /// Report for a completed job.
    pub fn job_report(&self, id: JobId) -> Option<JobReport> {
        let job = self.jobs.get(id.0 as usize)?;
        Some(JobReport {
            name: job.name.clone(),
            node: job.node,
            start_ns: job.start.map_or(0, SimTime::ns),
            end_ns: job.end.map_or(0, SimTime::ns),
            breakdown: job.breakdown.clone(),
            failed: job.state == JobState::Failed,
        })
    }

    /// Reports for every job, in submission order.
    pub fn reports(&self) -> Vec<JobReport> {
        (0..self.jobs.len() as u32)
            .map(|i| self.job_report(JobId(i)).expect("in range"))
            .collect()
    }

    /// Aggregate breakdown over all jobs.
    pub fn total_breakdown(&self) -> Breakdown {
        let mut b = Breakdown::new();
        for j in &self.jobs {
            b.merge(&j.breakdown);
        }
        b
    }

    /// Snapshot of the attached monitor's measurements.
    pub fn measurements(&self) -> Option<dfl_trace::MeasurementSet> {
        self.monitor.as_ref().map(Monitor::snapshot)
    }

    /// Aggregate cost of faults and recovery so far. `retries` and
    /// `recovery_jobs` are zero here — the workflow engine fills them in
    /// (the simulator doesn't know which jobs are retries of which tasks).
    pub fn failure_report(&self) -> FailureReport {
        let recovery_ns = self.jobs.iter().map(|j| j.breakdown.get(FlowTag::Recovery)).sum();
        FailureReport {
            crashes: self.stats.crashes,
            transient_io_errors: self.stats.transient_io_errors,
            failed_attempts: self.stats.failed_attempts,
            retries: 0,
            recovery_jobs: 0,
            lost_replicas: self.stats.lost_replicas,
            lost_files: self.stats.lost_files,
            lost_bytes: self.stats.lost_bytes,
            wasted_ns: self.stats.wasted_ns,
            wasted_bytes: self.stats.wasted_bytes.round() as u64,
            recovery_ns,
            recovery_bytes: self.stats.recovery_bytes.round() as u64,
            total_bytes: self.stats.total_moved.round() as u64,
            final_time_ns: self.now.ns(),
            corruptions_injected: self.stats.corruptions_injected,
            corruptions_detected: self.stats.corruptions_detected,
            quarantined_files: self.stats.quarantined_files,
            quarantined_bytes: self.stats.quarantined_bytes,
            verified_bytes: self.stats.verified_bytes,
        }
    }

    // ---- checkpoint snapshot / restore ----

    /// Captures the complete simulator state as a serializable value.
    ///
    /// Only legal at a quiescent point: no fatal error pending and no
    /// unreported failures (i.e. between `run_to_incident` returns). The
    /// embedded config strips any chaos clause so snapshot bytes agree
    /// between chaos-injected and clean runs, and a restored simulator
    /// never re-inherits the fault that killed its predecessor.
    pub fn snapshot(&self) -> Result<SimSnapshot, SimError> {
        if let Some(e) = &self.fatal {
            return Err(SimError::Snapshot(format!("fatal error pending: {e}")));
        }
        if !self.pending_failures.is_empty() {
            return Err(SimError::Snapshot(format!(
                "{} unreported failures pending",
                self.pending_failures.len()
            )));
        }
        let mut config = self.config.clone();
        config.faults = config.faults.without_chaos();
        // Canonical merge of the per-shard queues: sorted ascending by the
        // globally unique `(time, seq)`, so the serialized queue is
        // byte-identical at any shard count.
        let mut heap: Vec<(u64, u64, Event)> = self
            .queues
            .iter()
            .flat_map(|q| q.iter().map(|Reverse(e)| *e))
            .collect();
        heap.sort_unstable();
        // Per-domain pending-event cursors (node-keyed, so shard-count
        // invariant); restore re-routes the canonical queue through the
        // active plan and cross-checks these counts.
        let mut cursors = vec![0u64; self.cluster.node_count()];
        let mut shared_queued = 0u64;
        for &(_, _, ev) in &heap {
            match self.domain_of_event(ev) {
                Some(n) => cursors[n as usize] += 1,
                None => shared_queued += 1,
            }
        }
        Ok(SimSnapshot {
            version: SNAPSHOT_VERSION,
            cluster: self.cluster.clone(),
            config,
            net: self.net.snapshot(),
            files: self.fs.snapshot(),
            cache: self.cache.as_ref().map(CacheState::snapshot),
            monitor: self.monitor.as_ref().map(Monitor::state),
            jobs: self
                .jobs
                .iter()
                .map(|job| JobSnapshot {
                    name: job.name.clone(),
                    logical: job.logical.clone(),
                    node: job.node,
                    actions: job.actions.iter().cloned().collect(),
                    deps_left: job.deps_left,
                    deps: job.deps.clone(),
                    dependents: job.dependents.clone(),
                    state: job.state,
                    pending_flows: job.pending_flows,
                    io: job.io.clone(),
                    ctx: job.ctx.as_ref().map(TaskContext::snapshot),
                    fds: job.fds.iter().map(|(&f, &fd)| (f, fd.0)).collect(),
                    cursor: job.cursor.clone(),
                    start: job.start,
                    end: job.end,
                    breakdown: job.breakdown.clone(),
                    submit_delay_ns: job.submit_delay_ns,
                    recovery: job.recovery,
                    replaces: job.replaces,
                    flows: job.flows.iter().map(|k| k.0).collect(),
                    io_ops: job.io_ops,
                    moved_bytes: job.moved_bytes,
                    taint: job.taint,
                    reads_seen: job.reads_seen,
                })
                .collect(),
            heap,
            cursors,
            shared_queued,
            capacity_changes: self.capacity_changes.clone(),
            next_seq: self.next_seq,
            now_ns: self.now.ns(),
            free_cores: self.free_cores.clone(),
            ready: self.ready.iter().map(|q| q.iter().copied().collect()).collect(),
            finished: self.finished,
            node_up: self.node_up.clone(),
            stats: self.stats.clone(),
            events_dispatched: self.events_dispatched,
            obs: self.obs.as_deref().map(SimObs::state),
        })
    }

    /// Rebuilds a simulator from a [`Simulation::snapshot`].
    ///
    /// The derived layout (flow-network registration order, cache levels,
    /// observability tracks and metric ids) is reconstructed by re-running
    /// the normal constructor on the embedded cluster/config; the dynamic
    /// state is then overlaid wholesale. A restored simulator continues
    /// byte-identically to the one that was snapshotted. Chaos is always
    /// disarmed after restore.
    pub fn restore(snap: SimSnapshot) -> Result<Simulation, SimError> {
        let nodes = snap.cluster.node_count();
        Self::restore_sharded(snap, ShardPlan::single(nodes))
    }

    /// Rebuilds a simulator from a snapshot under an arbitrary shard plan.
    ///
    /// Snapshots are shard-count-invariant (the event queue is serialized
    /// as one canonical `(time, seq)`-sorted list with node-keyed
    /// cursors), so a checkpoint written at any shard count restores at any
    /// other: events are deterministically re-routed through `plan` and the
    /// cursors are cross-checked. Plans that do not fit the snapshot's
    /// cluster fail with a typed [`SimError::ShardPlan`].
    pub fn restore_sharded(snap: SimSnapshot, plan: ShardPlan) -> Result<Simulation, SimError> {
        if snap.version != SNAPSHOT_VERSION {
            return Err(SimError::Snapshot(format!(
                "snapshot version {} (this build expects {})",
                snap.version, SNAPSHOT_VERSION
            )));
        }
        if snap.cursors.len() != snap.cluster.node_count() {
            return Err(SimError::Snapshot(format!(
                "snapshot cursors cover {} nodes but the cluster has {}",
                snap.cursors.len(),
                snap.cluster.node_count()
            )));
        }
        let mut sim = Simulation::new_sharded(snap.cluster, snap.config, plan)?;
        sim.net = FlowNet::from_snapshot(snap.net);
        sim.fs = SimFs::from_snapshot(snap.files);
        match (sim.cache.is_some(), snap.cache) {
            (true, Some(cs)) => sim.cache = Some(CacheState::from_snapshot(cs)),
            (false, None) => {}
            _ => {
                return Err(SimError::Snapshot(
                    "cache presence mismatch between config and snapshot".into(),
                ));
            }
        }
        match (&sim.monitor, snap.monitor) {
            (Some(m), Some(st)) => m.restore_state(st),
            (None, None) => {}
            _ => {
                return Err(SimError::Snapshot(
                    "monitor presence mismatch between config and snapshot".into(),
                ));
            }
        }
        let jobs: Vec<Job> = snap
            .jobs
            .into_iter()
            .map(|js| Job {
                ctx: match (&js.ctx, &sim.monitor) {
                    (Some(ts), Some(m)) => Some(m.resume_task(ts)),
                    _ => None,
                },
                name: js.name,
                logical: js.logical,
                node: js.node,
                actions: js.actions.into(),
                deps_left: js.deps_left,
                deps: js.deps,
                dependents: js.dependents,
                state: js.state,
                pending_flows: js.pending_flows,
                io: js.io,
                fds: js
                    .fds
                    .into_iter()
                    .map(|(f, fd)| (f, dfl_trace::handle::Fd(fd)))
                    .collect(),
                cursor: js.cursor,
                start: js.start,
                end: js.end,
                breakdown: js.breakdown,
                submit_delay_ns: js.submit_delay_ns,
                recovery: js.recovery,
                replaces: js.replaces,
                flows: js.flows.into_iter().map(FlowKey).collect(),
                io_ops: js.io_ops,
                moved_bytes: js.moved_bytes,
                taint: js.taint,
                reads_seen: js.reads_seen,
            })
            .collect();
        sim.jobs = jobs;
        sim.capacity_changes = snap.capacity_changes;
        // Re-route the canonical event list into per-shard queues under the
        // active plan, cross-checking the node-keyed cursors: a mismatch
        // means the snapshot's routing state (jobs, fault table, capacity
        // registrations) disagrees with its queue — fail typed rather than
        // silently diverge.
        for q in &mut sim.queues {
            q.clear();
        }
        let mut cursors = vec![0u64; snap.cursors.len()];
        let mut shared_queued = 0u64;
        for (t, seq, ev) in snap.heap {
            match sim.domain_of_event(ev) {
                Some(n) => cursors[n as usize] += 1,
                None => shared_queued += 1,
            }
            let s = sim.shard_of_event(ev);
            sim.queues[s as usize].push(Reverse((t, seq, ev)));
        }
        if cursors != snap.cursors || shared_queued != snap.shared_queued {
            return Err(SimError::Snapshot(
                "event cursors disagree with the serialized queue".into(),
            ));
        }
        sim.window = None;
        sim.next_seq = snap.next_seq;
        sim.now = SimTime(snap.now_ns);
        sim.free_cores = snap.free_cores;
        sim.ready = snap.ready.into_iter().map(VecDeque::from).collect();
        sim.finished = snap.finished;
        sim.node_up = snap.node_up;
        sim.pending_failures = Vec::new();
        sim.fatal = None;
        sim.stats = snap.stats;
        sim.events_dispatched = snap.events_dispatched;
        match (sim.obs.as_deref_mut(), snap.obs) {
            (Some(o), Some(st)) => o.restore(st),
            (None, None) => {}
            _ => {
                return Err(SimError::Snapshot(
                    "obs presence mismatch between config and snapshot".into(),
                ));
            }
        }
        sim.chaos = None;
        Ok(sim)
    }
}

/// Version tag embedded in every [`SimSnapshot`]; bump on layout changes.
/// v2: events inline in `heap` entries (the side `events` log is gone).
/// v3: integrity fields — file digests/corruption state, job taint and
/// read counters, pending-I/O corruption outcome, corruption stats.
/// v4: sharded event core — node-keyed event cursors (`cursors`,
/// `shared_queued`), flow sizes owned by the flow network (the side
/// `flow_bytes` map is gone), group-coverage flow-heap entries.
pub const SNAPSHOT_VERSION: u32 = 4;

/// Serializable state of one [`Simulation`] job (see [`SimSnapshot`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSnapshot {
    pub name: String,
    pub logical: String,
    pub node: u32,
    pub actions: Vec<Action>,
    pub deps_left: usize,
    pub deps: Vec<u32>,
    pub dependents: Vec<u32>,
    pub state: JobState,
    pub pending_flows: usize,
    pub io: Option<PendingIo>,
    pub ctx: Option<TaskSnapshot>,
    /// `FileIdx -> Fd.0` for open trace fds.
    pub fds: HashMap<FileIdx, u64>,
    pub cursor: HashMap<FileIdx, u64>,
    pub start: Option<SimTime>,
    pub end: Option<SimTime>,
    pub breakdown: Breakdown,
    pub submit_delay_ns: u64,
    pub recovery: bool,
    pub replaces: Option<u32>,
    /// Active flow keys (`FlowKey.0`).
    pub flows: Vec<u64>,
    pub io_ops: u64,
    pub moved_bytes: f64,
    pub taint: Option<FileIdx>,
    pub reads_seen: u64,
}

/// Complete serializable state of a [`Simulation`] at a quiescent point.
///
/// Produced by [`Simulation::snapshot`], consumed by
/// [`Simulation::restore`]; the round trip is exact by construction: every
/// dynamic field travels verbatim (floats here are always finite), while
/// derived indices (`by_path`, lane heaps, track ids, interner ids) are
/// deterministic functions of what does travel and are rebuilt on restore.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimSnapshot {
    pub version: u32,
    pub cluster: ClusterSpec,
    /// Config with any chaos clause stripped (chaos never survives a
    /// checkpoint: the resumed run must not re-crash at the same point).
    pub config: SimConfig,
    pub net: FlowNetSnapshot,
    pub files: Vec<FileMeta>,
    pub cache: Option<CacheSnapshot>,
    pub monitor: Option<MonitorState>,
    pub jobs: Vec<JobSnapshot>,
    /// Pending event-queue entries `(time, seq, event)` from every shard,
    /// merged and sorted ascending (order is fully determined by content —
    /// all entries are distinct), so the serialized form is identical at
    /// any shard count.
    pub heap: Vec<(u64, u64, Event)>,
    /// Pending events per owning node (the shard-count-invariant cursor
    /// form; restore re-routes through the active plan and cross-checks).
    pub cursors: Vec<u64>,
    /// Pending events owned by the shared domain.
    pub shared_queued: u64,
    pub capacity_changes: Vec<(ResourceId, f64)>,
    pub next_seq: u64,
    pub now_ns: u64,
    pub free_cores: Vec<u32>,
    pub ready: Vec<Vec<u32>>,
    pub finished: usize,
    pub node_up: Vec<bool>,
    pub stats: FaultStats,
    pub events_dispatched: u64,
    pub obs: Option<SimObsState>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mb(n: u64) -> u64 {
        n << 20
    }

    fn simple_sim() -> Simulation {
        Simulation::new(ClusterSpec::gpu_cluster(2), SimConfig::default())
    }

    #[test]
    fn single_read_job_runs() {
        let mut sim = simple_sim();
        sim.fs_mut().create_external("in.dat", mb(100), TierRef::shared(TierKind::Nfs));
        let j = sim.submit(JobSpec::new("reader-0", 0).action(Action::read_file("in.dat")));
        sim.run().unwrap();
        let r = sim.job_report(j).unwrap();
        // 100 MiB at 500 MiB/s ≈ 0.2 s plus latency.
        let dur = r.duration_ns() as f64 / 1e9;
        assert!(dur > 0.19 && dur < 0.3, "duration {dur}");
        assert!(r.breakdown.get(FlowTag::SharedRead) > 0);
    }

    #[test]
    fn cacheless_config_with_cache_all_origins_reads_fine() {
        // Regression: `cache_origins: All` with `cache: None` used to steer
        // reads toward the cache branch, which unwrapped the absent cache
        // state. The branch must simply be skipped.
        let config = SimConfig { cache: None, cache_origins: CacheOrigins::All, ..Default::default() };
        let mut sim = Simulation::new(ClusterSpec::gpu_cluster(1), config);
        sim.fs_mut().create_external("in.dat", mb(64), TierRef::shared(TierKind::Nfs));
        let j = sim.submit(JobSpec::new("reader-0", 0).action(Action::read_file("in.dat")));
        sim.run().unwrap();
        let r = sim.job_report(j).unwrap();
        assert!(r.breakdown.get(FlowTag::SharedRead) > 0, "read went through the tier path");
    }

    #[test]
    fn write_then_read_roundtrip_with_measurement() {
        let mut sim = simple_sim();
        let w = sim.submit(
            JobSpec::new("writer-0", 0)
                .action(Action::Write { file: "mid".into(), len: mb(10), tier: Some(TierRef::shared(TierKind::Beegfs)) }),
        );
        let r = sim.submit(JobSpec::new("reader-0", 1).dep(w).action(Action::read_file("mid")));
        sim.run().unwrap();
        assert!(sim.job_report(r).unwrap().start_ns >= sim.job_report(w).unwrap().end_ns);

        let set = sim.measurements().unwrap();
        assert_eq!(set.tasks.len(), 2);
        let wrec = set.records.iter().find(|x| x.task_name == "writer-0").unwrap();
        let rrec = set.records.iter().find(|x| x.task_name == "reader-0").unwrap();
        assert_eq!(wrec.bytes_written, mb(10));
        assert_eq!(rrec.bytes_read, mb(10));
    }

    #[test]
    fn core_limit_serializes_jobs() {
        let mut cluster = ClusterSpec::gpu_cluster(1);
        cluster.nodes[0].cores = 1;
        let mut sim = Simulation::new(cluster, SimConfig::default());
        let a = sim.submit(JobSpec::new("a", 0).action(Action::compute_ms(100)));
        let b = sim.submit(JobSpec::new("b", 0).action(Action::compute_ms(100)));
        sim.run().unwrap();
        let (ra, rb) = (sim.job_report(a).unwrap(), sim.job_report(b).unwrap());
        assert!(rb.start_ns >= ra.end_ns, "one core: b waits for a");
        assert_eq!(sim.time().ns(), 200_000_000);
    }

    #[test]
    fn parallel_jobs_on_separate_nodes_overlap() {
        let mut sim = simple_sim();
        let a = sim.submit(JobSpec::new("a", 0).action(Action::compute_ms(100)));
        let b = sim.submit(JobSpec::new("b", 1).action(Action::compute_ms(100)));
        sim.run().unwrap();
        assert_eq!(sim.job_report(a).unwrap().start_ns, 0);
        assert_eq!(sim.job_report(b).unwrap().start_ns, 0);
        assert_eq!(sim.time().ns(), 100_000_000);
    }

    #[test]
    fn contention_slows_shared_tier() {
        // Two concurrent 100 MiB reads from NFS share 500 MiB/s.
        let mut sim = simple_sim();
        sim.fs_mut().create_external("x", mb(100), TierRef::shared(TierKind::Nfs));
        sim.fs_mut().create_external("y", mb(100), TierRef::shared(TierKind::Nfs));
        let a = sim.submit(JobSpec::new("a", 0).action(Action::read_file("x")));
        let b = sim.submit(JobSpec::new("b", 1).action(Action::read_file("y")));
        sim.run().unwrap();
        let da = sim.job_report(a).unwrap().duration_ns() as f64 / 1e9;
        let db = sim.job_report(b).unwrap().duration_ns() as f64 / 1e9;
        assert!(da > 0.38 && da < 0.5, "shared: {da}");
        assert!(db > 0.38 && db < 0.5, "shared: {db}");
    }

    #[test]
    fn node_local_reads_do_not_contend_across_nodes() {
        let mut sim = simple_sim();
        sim.fs_mut().create_external("x", mb(100), TierRef::node(TierKind::Ssd, 0));
        sim.fs_mut().create_external("y", mb(100), TierRef::node(TierKind::Ssd, 1));
        let a = sim.submit(JobSpec::new("a", 0).action(Action::read_file("x")));
        let b = sim.submit(JobSpec::new("b", 1).action(Action::read_file("y")));
        sim.run().unwrap();
        let da = sim.job_report(a).unwrap().duration_ns() as f64 / 1e9;
        // 100 MiB at 2000 MiB/s = 50 ms.
        assert!(da < 0.07, "independent SSDs: {da}");
        assert!(sim.job_report(b).unwrap().breakdown.get(FlowTag::LocalRead) > 0);
        let _ = b;
    }

    #[test]
    fn staging_changes_replica_choice() {
        let mut sim = simple_sim();
        sim.fs_mut().create_external("in", mb(100), TierRef::shared(TierKind::Nfs));
        let s = sim.submit(
            JobSpec::new("stage-0", 0).action(Action::stage("in", TierRef::node(TierKind::Ramdisk, 0))),
        );
        let r = sim.submit(JobSpec::new("reader-0", 0).dep(s).action(Action::read_file("in")));
        sim.run().unwrap();
        let rr = sim.job_report(r).unwrap();
        assert!(rr.breakdown.get(FlowTag::LocalRead) > 0, "read served from ramdisk");
        assert_eq!(rr.breakdown.get(FlowTag::SharedRead), 0);
        // Ramdisk read should be fast: 100 MiB at 8 GiB/s ≈ 12 ms.
        assert!(rr.duration_ns() < 40_000_000, "{}", rr.duration_ns());
    }

    #[test]
    fn remote_reads_via_cache_hit_after_warmup() {
        let mut sim = Simulation::new(
            ClusterSpec::cpu_cluster_with_data_server(1),
            SimConfig::with_cache(CacheConfig::tazer_table4()),
        );
        sim.fs_mut().create_external("ds", mb(64), TierRef::shared(TierKind::Wan));
        let a = sim.submit(JobSpec::new("t1-0", 0).action(Action::read_file("ds")));
        let b = sim.submit(JobSpec::new("t2-0", 0).dep(a).action(Action::read_file("ds")));
        sim.run().unwrap();
        let ra = sim.job_report(a).unwrap();
        let rb = sim.job_report(b).unwrap();
        assert!(ra.breakdown.get(FlowTag::NetworkRead) > 0, "cold read over WAN");
        assert_eq!(rb.breakdown.get(FlowTag::NetworkRead), 0, "warm read hits cache");
        assert!(rb.breakdown.get(FlowTag::CacheL2) > 0, "node-wide L2 serves task 2");
        assert!(rb.duration_ns() < ra.duration_ns() / 4, "cache ≫ WAN");
    }

    #[test]
    fn open_pays_metadata_cost() {
        let mut sim = simple_sim();
        sim.fs_mut().create_external("f", mb(1), TierRef::shared(TierKind::Nfs));
        let j = sim.submit(
            JobSpec::new("o", 0)
                .action(Action::Open { file: "f".into(), write: false })
                .action(Action::Read { file: "f".into(), offset: None, len: 0 })
                .action(Action::Close { file: "f".into() }),
        );
        sim.run().unwrap();
        let r = sim.job_report(j).unwrap();
        assert!(r.breakdown.get(FlowTag::Metadata) >= 1_000_000, "NFS open ≈ 1.5 ms");
    }

    #[test]
    fn dependency_chain_ordering() {
        let mut sim = simple_sim();
        let a = sim.submit(JobSpec::new("a", 0).action(Action::compute_ms(10)));
        let b = sim.submit(JobSpec::new("b", 0).dep(a).action(Action::compute_ms(10)));
        let c = sim.submit(JobSpec::new("c", 1).dep(b).action(Action::compute_ms(10)));
        sim.run().unwrap();
        let (ra, rb, rc) = (
            sim.job_report(a).unwrap(),
            sim.job_report(b).unwrap(),
            sim.job_report(c).unwrap(),
        );
        assert!(ra.end_ns <= rb.start_ns && rb.end_ns <= rc.start_ns);
        assert_eq!(sim.time().ns(), 30_000_000);
    }

    #[test]
    fn determinism_across_runs() {
        let build = || {
            let mut sim = simple_sim();
            sim.fs_mut().create_external("x", mb(64), TierRef::shared(TierKind::Beegfs));
            for i in 0..8 {
                sim.submit(
                    JobSpec::new(&format!("t-{i}"), i % 2)
                        .action(Action::read_file("x"))
                        .action(Action::compute_ms(5))
                        .action(Action::write_file(&format!("o{i}"), mb(4))),
                );
            }
            sim.run().unwrap();
            (sim.time(), sim.reports().iter().map(|r| r.end_ns).collect::<Vec<_>>())
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn empty_job_completes_immediately() {
        let mut sim = simple_sim();
        let j = sim.submit(JobSpec::new("noop", 0));
        sim.run().unwrap();
        assert_eq!(sim.job_report(j).unwrap().duration_ns(), 0);
    }

    #[test]
    fn delayed_arrival() {
        let mut sim = simple_sim();
        let j = sim.submit(JobSpec::new("late", 0).delay_ns(50_000_000).action(Action::compute_ms(1)));
        sim.run().unwrap();
        assert_eq!(sim.job_report(j).unwrap().start_ns, 50_000_000);
    }

    #[test]
    fn monitor_none_disables_measurement() {
        // Regression: `monitor: None` used to be silently replaced with a
        // default monitor, so measurement could never be turned off.
        let mut sim = Simulation::new(
            ClusterSpec::gpu_cluster(1),
            SimConfig { monitor: None, ..SimConfig::default() },
        );
        sim.fs_mut().create_external("in.dat", mb(1), TierRef::shared(TierKind::Nfs));
        sim.submit(JobSpec::new("reader-0", 0).action(Action::read_file("in.dat")));
        sim.run().unwrap();
        assert!(sim.measurements().is_none(), "opting out of the monitor must stick");
        // The default config still attaches one.
        let mut sim = simple_sim();
        sim.submit(JobSpec::new("noop-0", 0).action(Action::compute_ms(1)));
        sim.run().unwrap();
        assert!(sim.measurements().is_some());
    }

    #[test]
    fn first_write_places_file_exactly_once() {
        // Regression: a fresh file written with an explicit tier used to go
        // through `create_for_write` twice; the collapsed placement decision
        // must leave exactly the requested replica.
        let tier = TierRef::node(TierKind::Ssd, 0);
        let mut sim = simple_sim();
        sim.submit(
            JobSpec::new("writer-0", 0)
                .action(Action::Write { file: "out".into(), len: mb(4), tier: Some(tier) }),
        );
        sim.run().unwrap();
        let idx = sim.fs().lookup("out").unwrap();
        assert_eq!(sim.fs().meta(idx).replicas, vec![tier]);
        assert_eq!(sim.fs().meta(idx).size, mb(4));
    }

    #[test]
    fn tier_on_nonempty_file_does_not_replace() {
        // A tier request only places a file while it has no data: once
        // bytes exist, later writes must not silently re-home them.
        let first = TierRef::shared(TierKind::Beegfs);
        let second = TierRef::node(TierKind::Ssd, 0);
        let mut sim = simple_sim();
        let w1 = sim.submit(
            JobSpec::new("writer-0", 0)
                .action(Action::Write { file: "out".into(), len: mb(2), tier: Some(first) }),
        );
        sim.submit(
            JobSpec::new("writer-1", 0)
                .dep(w1)
                .action(Action::Write { file: "out".into(), len: mb(2), tier: Some(second) }),
        );
        sim.run().unwrap();
        let idx = sim.fs().lookup("out").unwrap();
        assert_eq!(sim.fs().meta(idx).replicas, vec![first]);
        assert_eq!(sim.fs().meta(idx).size, mb(4));
    }
}

#[cfg(test)]
mod buffering_and_failure_tests {
    use super::*;

    fn mb(n: u64) -> u64 {
        n << 20
    }

    #[test]
    fn write_buffering_takes_writes_off_the_task_path() {
        let run_with = |buffered: bool| {
            let mut sim = Simulation::new(
                ClusterSpec::gpu_cluster(1),
                SimConfig { write_buffering: buffered, ..SimConfig::default() },
            );
            let j = sim.submit(
                JobSpec::new("writer-0", 0)
                    .action(Action::Write {
                        file: "out".into(),
                        len: mb(200),
                        tier: Some(TierRef::shared(TierKind::Nfs)),
                    })
                    .action(Action::compute_ms(10)),
            );
            sim.run().unwrap();
            (sim.job_report(j).unwrap().duration_ns(), sim.time().ns())
        };
        let (synchronous, _) = run_with(false);
        let (buffered, makespan) = run_with(true);
        // 200 MiB to NFS at 350 MiB/s ≈ 0.57 s synchronous; buffered the
        // task only pays its compute.
        assert!(buffered < synchronous / 10, "{buffered} vs {synchronous}");
        // …but the drain still happens before the simulation ends.
        assert!(makespan >= 500_000_000, "drain occupies the makespan: {makespan}");
    }

    #[test]
    fn buffered_writes_still_measured() {
        let mut sim = Simulation::new(
            ClusterSpec::gpu_cluster(1),
            SimConfig { write_buffering: true, ..SimConfig::default() },
        );
        sim.submit(JobSpec::new("w-0", 0).action(Action::write_file("f", mb(10))));
        sim.run().unwrap();
        let set = sim.measurements().unwrap();
        assert_eq!(set.records[0].bytes_written, mb(10));
    }

    #[test]
    fn straggler_nic_slows_transfer_mid_flight() {
        let base = {
            let mut sim = Simulation::new(ClusterSpec::gpu_cluster(1), SimConfig::default());
            sim.fs_mut().create_external("x", mb(100), TierRef::shared(TierKind::Beegfs));
            sim.submit(JobSpec::new("r-0", 0).action(Action::read_file("x")));
            sim.run().unwrap();
            sim.time().ns()
        };
        let degraded = {
            let mut sim = Simulation::new(ClusterSpec::gpu_cluster(1), SimConfig::default());
            sim.fs_mut().create_external("x", mb(100), TierRef::shared(TierKind::Beegfs));
            let nic = sim.nic_resource(0);
            // Halfway through the ~50ms transfer, the NIC collapses to 1%.
            sim.schedule_capacity_change(25_000_000, nic, 12.5 * (1 << 20) as f64);
            sim.submit(JobSpec::new("r-0", 0).action(Action::read_file("x")));
            sim.run().unwrap();
            sim.time().ns()
        };
        assert!(degraded > base * 3, "straggler visible: {degraded} vs {base}");
    }

    #[test]
    fn tier_degradation_shifts_makespan() {
        let mut sim = Simulation::new(ClusterSpec::gpu_cluster(2), SimConfig::default());
        sim.fs_mut().create_external("x", mb(200), TierRef::shared(TierKind::Nfs));
        let tier = sim.tier_resource(TierRef::shared(TierKind::Nfs));
        sim.schedule_capacity_change(0, tier, 50.0 * (1 << 20) as f64);
        let j = sim.submit(JobSpec::new("r-0", 0).action(Action::read_file("x")));
        sim.run().unwrap();
        // 200 MiB at 50 MiB/s = 4s.
        let dur = sim.job_report(j).unwrap().duration_ns() as f64 / 1e9;
        assert!(dur > 3.9 && dur < 4.3, "{dur}");
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::fault::Degradation;

    fn mb(n: u64) -> u64 {
        n << 20
    }

    fn sim_with(faults: FaultPlan) -> Simulation {
        Simulation::new(ClusterSpec::gpu_cluster(2), SimConfig { faults, ..SimConfig::default() })
    }

    #[test]
    fn missing_read_is_an_error_not_a_panic() {
        let mut sim = sim_with(FaultPlan::none());
        sim.submit(JobSpec::new("r-0", 0).action(Action::read_file("ghost")));
        let err = sim.run().unwrap_err();
        assert_eq!(err, SimError::MissingFile { file: "ghost".into(), job: "r-0".into() });
    }

    #[test]
    fn missing_open_and_stage_are_errors_too() {
        let mut sim = sim_with(FaultPlan::none());
        sim.submit(JobSpec::new("o-0", 0).action(Action::Open { file: "ghost".into(), write: false }));
        assert!(matches!(sim.run(), Err(SimError::MissingFile { .. })));
        let mut sim = sim_with(FaultPlan::none());
        sim.submit(
            JobSpec::new("s-0", 0).action(Action::stage("ghost", TierRef::node(TierKind::Ssd, 0))),
        );
        assert!(matches!(sim.run(), Err(SimError::MissingFile { .. })));
    }

    #[test]
    fn unprovisioned_tier_is_an_error_not_a_panic() {
        // gpu_cluster provisions no WAN tier: an external file placed there
        // used to panic inside `tier_spec` on the first read.
        let mut sim = sim_with(FaultPlan::none());
        sim.fs_mut().create_external("remote", mb(64), TierRef::shared(TierKind::Wan));
        sim.submit(JobSpec::new("r-0", 0).action(Action::read_file("remote")));
        assert_eq!(sim.run().unwrap_err(), SimError::NoSuchTier("wan".into()));

        // Same for a stage action targeting an absent tier...
        let mut sim = sim_with(FaultPlan::none());
        sim.fs_mut().create_external("x", mb(1), TierRef::shared(TierKind::Nfs));
        sim.submit(
            JobSpec::new("s-0", 0).action(Action::stage("x", TierRef::shared(TierKind::Lustre))),
        );
        assert!(matches!(sim.run(), Err(SimError::NoSuchTier(_))));

        // ...and a replica pinned to a node index outside the cluster.
        let mut sim = sim_with(FaultPlan::none());
        sim.fs_mut().create_external("y", mb(1), TierRef::node(TierKind::Ssd, 99));
        sim.submit(JobSpec::new("r-1", 0).action(Action::read_file("y")));
        assert_eq!(sim.run().unwrap_err(), SimError::BadNode(99));
    }

    #[test]
    fn crash_fails_running_job_and_loses_local_files() {
        // Job on node 0 writes to ramdisk then computes; the crash lands in
        // the compute interval, after the local file exists.
        let faults = FaultPlan::seeded(1).crash(0, 80_000_000, 40_000_000);
        let mut sim = sim_with(faults);
        let j = sim.submit(
            JobSpec::new("w-0", 0)
                .action(Action::Write {
                    file: "local".into(),
                    len: mb(16),
                    tier: Some(TierRef::node(TierKind::Ramdisk, 0)),
                })
                .action(Action::compute_ms(500)),
        );
        let outcome = sim.run_to_incident().unwrap();
        let RunOutcome::Failures(fs) = outcome else { panic!("expected failures") };
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].job, j);
        assert_eq!(fs[0].cause, FailureCause::NodeCrash { node: 0 });
        assert_eq!(fs[0].at_ns, 80_000_000);
        let idx = sim.fs().lookup("local").unwrap();
        assert!(sim.fs().is_lost(idx), "ramdisk replica died with the node");
        assert!(!sim.job_done(j));
        let report = sim.failure_report();
        assert_eq!(report.crashes, 1);
        assert_eq!(report.failed_attempts, 1);
        assert_eq!(report.lost_files, 1);
        assert_eq!(report.lost_bytes, mb(16));
        assert!(report.wasted_ns > 0);
        // Nothing left to do: the run finishes with the failure recorded.
        assert!(matches!(sim.run_to_incident().unwrap(), RunOutcome::Completed));
    }

    #[test]
    fn resubmit_releases_dependents_of_the_failed_original() {
        let faults = FaultPlan::seeded(1).crash(0, 50_000_000, 10_000_000);
        let mut sim = sim_with(faults);
        let w = sim.submit(
            JobSpec::new("w-0", 0)
                .action(Action::compute_ms(100))
                .action(Action::write_file("out", mb(4))),
        );
        let consumer =
            sim.submit(JobSpec::new("c-0", 1).dep(w).action(Action::read_file("out")));
        let RunOutcome::Failures(fs) = sim.run_to_incident().unwrap() else {
            panic!("crash expected")
        };
        assert_eq!(fs[0].job, w);
        // Retry on the surviving node, replacing the failed original.
        let retry = sim.resubmit(
            w,
            JobSpec::new("w-0~r1", 1)
                .delay_ns(sim.time().ns())
                .action(Action::compute_ms(100))
                .action(Action::write_file("out", mb(4))),
        );
        sim.run().unwrap();
        assert!(sim.job_done(retry) && sim.job_done(consumer));
        let rr = sim.job_report(consumer).unwrap();
        let retry_end = sim.job_report(retry).unwrap().end_ns;
        assert!(rr.start_ns >= retry_end, "consumer waited for the retry");
    }

    #[test]
    fn crashed_node_rejects_work_until_recovery() {
        // Node 0 is down 100..200 ms; a job arriving at 150 ms must start
        // only after recovery.
        let faults = FaultPlan::seeded(1).crash(0, 100_000_000, 100_000_000);
        let mut sim = sim_with(faults);
        let j = sim.submit(
            JobSpec::new("late-0", 0).delay_ns(150_000_000).action(Action::compute_ms(10)),
        );
        sim.run().unwrap();
        assert_eq!(sim.job_report(j).unwrap().start_ns, 200_000_000);
    }

    #[test]
    fn transient_io_error_fails_the_attempt() {
        // Probability ~1 makes the very first read fail deterministically.
        let faults = FaultPlan::seeded(3).io_errors(0.999_999);
        let mut sim = sim_with(faults);
        sim.fs_mut().create_external("x", mb(8), TierRef::shared(TierKind::Nfs));
        let j = sim.submit(JobSpec::new("r-0", 0).action(Action::read_file("x")));
        let RunOutcome::Failures(fs) = sim.run_to_incident().unwrap() else {
            panic!("io error expected")
        };
        assert_eq!(fs[0].job, j);
        assert_eq!(fs[0].cause, FailureCause::IoError { file: "x".into() });
        assert_eq!(sim.failure_report().transient_io_errors, 1);
    }

    #[test]
    fn degradation_window_slows_then_restores() {
        let window = |faults: FaultPlan| {
            let mut sim = sim_with(faults);
            sim.fs_mut().create_external("x", mb(100), TierRef::shared(TierKind::Beegfs));
            sim.submit(JobSpec::new("r-0", 0).action(Action::read_file("x")));
            sim.run().unwrap();
            sim.time().ns()
        };
        let clean = window(FaultPlan::none());
        // Throttle BeeGFS to 1% for the middle of the ~50ms transfer.
        let degraded = window(FaultPlan::seeded(1).degrade(Degradation {
            target: DegradeTarget::Tier(TierRef::shared(TierKind::Beegfs)),
            at_ns: 10_000_000,
            duration_ns: 50_000_000,
            factor: 0.01,
        }));
        assert!(degraded > clean + 40_000_000, "window visible: {degraded} vs {clean}");
        // After the window, capacity is restored: a second, later read is
        // full speed again.
        let mut sim = sim_with(FaultPlan::seeded(1).degrade(Degradation {
            target: DegradeTarget::Tier(TierRef::shared(TierKind::Beegfs)),
            at_ns: 0,
            duration_ns: 1_000_000,
            factor: 0.01,
        }));
        sim.fs_mut().create_external("x", mb(100), TierRef::shared(TierKind::Beegfs));
        let j = sim
            .submit(JobSpec::new("r-0", 0).delay_ns(2_000_000).action(Action::read_file("x")));
        sim.run().unwrap();
        // Full speed again: the 1250 MiB/s NIC bounds the read at ~80 ms.
        let dur = sim.job_report(j).unwrap().duration_ns();
        assert!(dur < 90_000_000, "restored: {dur}");
    }

    #[test]
    fn none_plan_is_byte_identical_to_default_config() {
        let run = |cfg: SimConfig| {
            let mut sim = Simulation::new(ClusterSpec::gpu_cluster(2), cfg);
            sim.fs_mut().create_external("x", mb(64), TierRef::shared(TierKind::Beegfs));
            for i in 0..6 {
                sim.submit(
                    JobSpec::new(&format!("t-{i}"), i % 2)
                        .action(Action::read_file("x"))
                        .action(Action::compute_ms(3))
                        .action(Action::write_file(&format!("o{i}"), mb(2))),
                );
            }
            sim.run().unwrap();
            let ends: Vec<u64> = sim.reports().iter().map(|r| r.end_ns).collect();
            (sim.time().ns(), ends)
        };
        let base = run(SimConfig::default());
        let with_plan = run(SimConfig {
            faults: FaultPlan::seeded(12345), // seeded but inert
            ..SimConfig::default()
        });
        assert_eq!(base, with_plan);
    }

    #[test]
    fn deadlock_report_names_lost_files_and_failed_deps() {
        // Producer writes to ramdisk, crash destroys it, consumer waits on
        // the failed producer forever (no retry submitted).
        let faults = FaultPlan::seeded(1).crash(0, 60_000_000, 10_000_000);
        let mut sim = sim_with(faults);
        let w = sim.submit(
            JobSpec::new("prod-0", 0)
                .action(Action::Write {
                    file: "mid".into(),
                    len: mb(8),
                    tier: Some(TierRef::node(TierKind::Ramdisk, 0)),
                })
                .action(Action::compute_ms(200)),
        );
        sim.submit(JobSpec::new("cons-0", 1).dep(w).action(Action::read_file("mid")));
        let err = sim.run().unwrap_err();
        let SimError::Deadlock { pending, stuck } = &err else { panic!("deadlock expected") };
        assert_eq!(*pending, 1);
        assert_eq!(stuck.len(), 1);
        assert_eq!(stuck[0].name, "cons-0");
        assert!(stuck[0].waiting_on.iter().any(|w| w.contains("failed dep 'prod-0'")), "{err}");
        assert!(stuck[0].waiting_on.iter().any(|w| w.contains("lost file mid")), "{err}");
    }

    #[test]
    fn recovery_jobs_tag_flows_as_recovery() {
        let mut sim = sim_with(FaultPlan::none());
        sim.fs_mut().create_external("x", mb(16), TierRef::shared(TierKind::Nfs));
        let j = sim.submit(
            JobSpec::new("rec-0", 0)
                .recovery(true)
                .action(Action::read_file("x"))
                .action(Action::write_file("y", mb(4))),
        );
        sim.run().unwrap();
        let r = sim.job_report(j).unwrap();
        assert!(r.breakdown.get(FlowTag::Recovery) > 0);
        assert_eq!(r.breakdown.get(FlowTag::SharedRead), 0);
        assert_eq!(r.breakdown.get(FlowTag::Write), 0);
        assert!(sim.failure_report().recovery_bytes >= mb(16 + 4));
    }

    #[test]
    fn failure_report_deterministic_across_runs() {
        let run = || {
            let faults = FaultPlan::seeded(42).crash(0, 30_000_000, 20_000_000).io_errors(0.05);
            let mut sim = sim_with(faults);
            sim.fs_mut().create_external("x", mb(32), TierRef::shared(TierKind::Beegfs));
            for i in 0..8 {
                sim.submit(
                    JobSpec::new(&format!("t-{i}"), i % 2)
                        .action(Action::read_file("x"))
                        .action(Action::compute_ms(20))
                        .action(Action::write_file(&format!("o{i}"), mb(2))),
                );
            }
            // Drive to completion ignoring failures.
            sim.run().unwrap();
            sim.failure_report()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn obs_timeline_records_without_monitor() {
        // "Monitoring disabled" must not disable the timeline: DFL
        // measurement and observability are independent layers.
        let mut sim = Simulation::new(
            ClusterSpec::gpu_cluster(2),
            SimConfig {
                monitor: None,
                obs: Some(ObsConfig::sampled(50_000_000)),
                ..SimConfig::default()
            },
        );
        sim.fs_mut().create_external("in.dat", mb(100), TierRef::shared(TierKind::Nfs));
        let w = sim.submit(JobSpec::new("reader-0", 0).action(Action::read_file("in.dat")));
        sim.submit(
            JobSpec::new("writer-0", 1).dep(w).action(Action::write_file("out.dat", mb(10))),
        );
        sim.run().unwrap();
        assert!(sim.measurements().is_none());
        let tl = sim.take_timeline().expect("obs enabled");
        assert!(sim.take_timeline().is_none(), "timeline taken once");
        // Queued + run spans for both jobs, one flow span each.
        let runs: Vec<_> = tl
            .spans()
            .filter(|s| s.kind == dfl_obs::SpanKind::Run)
            .map(|s| s.name.clone())
            .collect();
        assert_eq!(runs, vec!["reader-0", "writer-0"]);
        assert_eq!(tl.spans().filter(|s| s.kind == dfl_obs::SpanKind::Queued).count(), 2);
        assert_eq!(tl.spans().filter(|s| s.kind == dfl_obs::SpanKind::Flow).count(), 2);
        assert!(tl.samples().count() > 0, "sampling cadence produced samples");
        assert_eq!(tl.end_ns, sim.time().ns());
        assert_eq!(tl.metrics.counter("jobs_completed"), 2);
        assert_eq!(tl.metrics.counter("flows_completed"), 2);
        // The flow span records src/dst endpoints and byte size.
        let flow = tl.spans().find(|s| s.kind == dfl_obs::SpanKind::Flow).unwrap();
        assert_eq!(flow.meta.src.as_deref(), Some("tier:nfs"));
        assert_eq!(flow.meta.bytes, Some(mb(100)));
    }

    #[test]
    fn obs_timeline_is_deterministic_under_faults() {
        let build = || {
            let faults = FaultPlan::seeded(7).crash(0, 30_000_000, 20_000_000).io_errors(0.05);
            let mut sim = Simulation::new(
                ClusterSpec::gpu_cluster(2),
                SimConfig {
                    obs: Some(ObsConfig::sampled(10_000_000)),
                    faults,
                    ..SimConfig::default()
                },
            );
            sim.fs_mut().create_external("x", mb(32), TierRef::shared(TierKind::Beegfs));
            for i in 0..8 {
                sim.submit(
                    JobSpec::new(&format!("t-{i}"), i % 2)
                        .action(Action::read_file("x"))
                        .action(Action::compute_ms(20))
                        .action(Action::write_file(&format!("o{i}"), mb(2))),
                );
            }
            sim.run().unwrap();
            sim.take_timeline().expect("obs enabled")
        };
        let (a, b) = (build(), build());
        assert_eq!(a, b);
        // Faults left marks: failed attempts close spans as Failed.
        assert!(a.spans().any(|s| s.outcome == dfl_obs::SpanOutcome::Failed));
        assert!(a.instants().any(|i| i.kind == dfl_obs::InstantKind::NodeCrash));
    }

    #[test]
    fn obs_disabled_returns_no_timeline() {
        let mut sim = sim_with(FaultPlan::none());
        sim.submit(JobSpec::new("a", 0).action(Action::compute_ms(1)));
        sim.run().unwrap();
        assert!(sim.take_timeline().is_none());
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;
    use serde::Value;

    fn mb(n: u64) -> u64 {
        n << 20
    }

    /// A workload exercising every snapshot surface at once: monitor, cache,
    /// observability, node crash, transient I/O errors, cross-node flows.
    fn workload(faults: FaultPlan) -> Simulation {
        let mut sim = Simulation::new(
            ClusterSpec::gpu_cluster(2),
            SimConfig {
                cache: Some(CacheConfig::tazer_table4()),
                cache_origins: CacheOrigins::All,
                obs: Some(ObsConfig::sampled(10_000_000)),
                faults,
                ..SimConfig::default()
            },
        );
        sim.fs_mut().create_external("x", mb(32), TierRef::shared(TierKind::Beegfs));
        for i in 0..8 {
            sim.submit(
                JobSpec::new(&format!("t-{i}"), i % 2)
                    .action(Action::read_file("x"))
                    .action(Action::compute_ms(20))
                    .action(Action::write_file(&format!("o{i}"), mb(2))),
            );
        }
        sim
    }

    fn base_faults() -> FaultPlan {
        FaultPlan::seeded(42).crash(0, 30_000_000, 20_000_000).io_errors(0.05)
    }

    /// Drives to completion and returns every comparable outcome surface.
    type Finish = (u64, u64, Vec<(String, u64, bool)>, FailureReport, Value, Timeline);

    fn finish(mut sim: Simulation) -> Finish {
        sim.run().unwrap();
        let reports =
            sim.reports().iter().map(|r| (r.name.clone(), r.end_ns, r.failed)).collect();
        let report = sim.failure_report();
        let measurements = sim.measurements().expect("monitor attached").to_value();
        let tl = sim.take_timeline().expect("obs attached");
        (sim.time().ns(), sim.events_dispatched(), reports, report, measurements, tl)
    }

    #[test]
    fn snapshot_restore_mid_run_is_exact() {
        let golden = finish(workload(base_faults()));

        let mut sim = workload(base_faults());
        sim.set_pause_at(Some(45_000_000));
        loop {
            match sim.run_to_incident().unwrap() {
                RunOutcome::Paused => break,
                RunOutcome::Failures(_) => {}
                RunOutcome::Completed => panic!("pause expected before completion"),
            }
        }
        let snap = sim.snapshot().unwrap();
        // Full serialize/deserialize round trip through the value tree.
        let restored = Simulation::restore(SimSnapshot::from_value(&snap.to_value()).unwrap())
            .unwrap();
        assert_eq!(finish(restored), golden, "restored run diverged from golden");
        // The paused original is also unperturbed.
        assert_eq!(finish(sim), golden, "pause was not transparent");
    }

    #[test]
    fn pause_on_job_complete_is_transparent() {
        let golden = finish(workload(base_faults()));
        let mut sim = workload(base_faults());
        sim.set_pause_on_job_complete(true);
        let mut pauses = 0;
        loop {
            match sim.run_to_incident().unwrap() {
                RunOutcome::Paused => pauses += 1,
                RunOutcome::Failures(_) => {}
                RunOutcome::Completed => break,
            }
        }
        assert!(pauses > 0, "at least one completion pause");
        sim.set_pause_on_job_complete(false);
        sim.run().unwrap();
        let reports: Vec<(String, u64, bool)> =
            sim.reports().iter().map(|r| (r.name.clone(), r.end_ns, r.failed)).collect();
        assert_eq!(sim.time().ns(), golden.0);
        assert_eq!(sim.events_dispatched(), golden.1);
        assert_eq!(reports, golden.2);
        assert_eq!(sim.take_timeline().unwrap(), golden.5);
    }

    #[test]
    fn chaos_crash_then_resume_reproduces_golden() {
        let golden = finish(workload(base_faults()));
        let total = golden.1;
        assert!(total > 10, "workload must dispatch enough events: {total}");

        for at_event in [total / 4, total / 2, (3 * total) / 4] {
            // Periodic checkpoints every 20 sim-ms; chaos kills the
            // coordinator just before dispatch `at_event`.
            let mut sim = workload(base_faults().chaos_crash(at_event));
            let mut latest = sim.snapshot().unwrap();
            let mut next_ckpt = 20_000_000;
            sim.set_pause_at(Some(next_ckpt));
            loop {
                match sim.run_to_incident() {
                    Ok(RunOutcome::Paused) => {
                        latest = sim.snapshot().unwrap();
                        next_ckpt += 20_000_000;
                        sim.set_pause_at(Some(next_ckpt));
                    }
                    Ok(RunOutcome::Failures(_)) => {}
                    Ok(RunOutcome::Completed) => panic!("chaos must kill before completion"),
                    Err(SimError::CoordinatorCrash { at_event: e }) => {
                        assert_eq!(e, at_event);
                        break;
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            // Resume from the latest surviving manifest bytes.
            let restored =
                Simulation::restore(SimSnapshot::from_value(&latest.to_value()).unwrap())
                    .unwrap();
            assert_eq!(
                finish(restored),
                golden,
                "crash before dispatch {at_event} did not resume byte-identically"
            );
        }
    }

    #[test]
    fn restore_rejects_version_mismatch() {
        let sim = workload(FaultPlan::none());
        let mut snap = sim.snapshot().unwrap();
        snap.version = SNAPSHOT_VERSION + 1;
        match Simulation::restore(snap) {
            Err(SimError::Snapshot(msg)) => assert!(msg.contains("version"), "{msg}"),
            Err(e) => panic!("wrong error: {e}"),
            Ok(_) => panic!("version mismatch must be rejected"),
        }
    }

    #[test]
    fn snapshot_allowed_at_quiescent_points() {
        let mut sim = workload(base_faults());
        sim.set_pause_at(Some(29_000_000));
        let mut saw_failures = false;
        loop {
            match sim.run_to_incident().unwrap() {
                RunOutcome::Paused => break,
                // Failures handed to the caller leave the sim quiescent:
                // snapshots are legal between `run_to_incident` returns.
                RunOutcome::Failures(_) => {
                    saw_failures = true;
                    assert!(sim.snapshot().is_ok(), "post-incident point is quiescent");
                }
                RunOutcome::Completed => panic!("pause expected before completion"),
            }
        }
        assert!(saw_failures, "workload injects failures before the pause");
        assert!(sim.snapshot().is_ok(), "paused point is quiescent");
    }

    #[test]
    fn snapshot_strips_chaos_from_config() {
        let sim = workload(base_faults().chaos_crash(5));
        let snap = sim.snapshot().unwrap();
        assert!(snap.config.faults.chaos.is_none(), "chaos must not survive a snapshot");
        // And byte-equality with the clean-config snapshot holds.
        let clean = workload(base_faults()).snapshot().unwrap();
        assert_eq!(snap.to_value(), clean.to_value());
    }
}
