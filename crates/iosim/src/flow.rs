//! Fluid-flow bandwidth model with fair sharing.
//!
//! Every transfer is a *flow* over a path of resources (storage device,
//! NICs, shared filesystem servers, WAN links). At any instant a flow's rate
//! is `min over path resources of (capacity / concurrent flows)` — the
//! classic bottleneck fair-share approximation used by fluid simulators.
//! Rates are re-profiled whenever a flow starts or completes; between
//! re-profiles all flows progress linearly, so the next completion time is
//! exact.

use std::collections::BTreeMap;

use crate::breakdown::FlowTag;
use crate::time::SimTime;

/// Index of a bandwidth resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub u32);

/// A capacity-limited resource (bytes per second).
#[derive(Debug, Clone)]
pub struct Resource {
    pub name: String,
    pub capacity: f64,
}

/// Handle to an active flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey(pub u64);

/// Opaque per-flow payload the engine uses to resume the owning job.
#[derive(Debug, Clone, Copy)]
pub struct FlowOwner {
    pub job: u32,
    pub tag: FlowTag,
    /// Background flows (e.g. buffered-write drains) are accounted to the
    /// job but do not block its progress.
    pub background: bool,
}

#[derive(Debug)]
struct FlowState {
    path: Vec<ResourceId>,
    remaining: f64,
    rate: f64,
    owner: FlowOwner,
    started: SimTime,
}

/// The flow network: resources plus active flows.
#[derive(Debug, Default)]
pub struct FlowNet {
    resources: Vec<Resource>,
    active: BTreeMap<u64, FlowState>,
    next_key: u64,
    last_sync: SimTime,
}

impl FlowNet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resource; capacities must be positive.
    pub fn add_resource(&mut self, name: &str, capacity: f64) -> ResourceId {
        assert!(capacity > 0.0, "resource {name} must have positive capacity");
        let id = ResourceId(self.resources.len() as u32);
        self.resources.push(Resource { name: name.to_owned(), capacity });
        id
    }

    pub fn resource(&self, id: ResourceId) -> &Resource {
        &self.resources[id.0 as usize]
    }

    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Advances all active flows to `now` (consuming `rate × dt` bytes).
    fn sync(&mut self, now: SimTime) {
        let dt = now.since(self.last_sync) as f64 / 1e9;
        if dt > 0.0 {
            for f in self.active.values_mut() {
                f.remaining = (f.remaining - f.rate * dt).max(0.0);
            }
        }
        self.last_sync = now;
    }

    /// Recomputes every flow's fair-share rate.
    fn reprofile(&mut self) {
        let mut load = vec![0u32; self.resources.len()];
        for f in self.active.values() {
            for r in &f.path {
                load[r.0 as usize] += 1;
            }
        }
        for f in self.active.values_mut() {
            let mut rate = f64::INFINITY;
            for r in &f.path {
                let share = self.resources[r.0 as usize].capacity / load[r.0 as usize] as f64;
                rate = rate.min(share);
            }
            assert!(rate.is_finite(), "flows must traverse at least one resource");
            f.rate = rate;
        }
    }

    /// Starts a flow of `bytes` over `path` at time `now`.
    ///
    /// # Panics
    /// Panics if `path` is empty or `bytes` is not positive — callers handle
    /// zero-byte transfers without entering the flow network.
    pub fn start(&mut self, now: SimTime, path: Vec<ResourceId>, bytes: f64, owner: FlowOwner) -> FlowKey {
        assert!(!path.is_empty());
        assert!(bytes > 0.0);
        self.sync(now);
        let key = FlowKey(self.next_key);
        self.next_key += 1;
        self.active.insert(
            key.0,
            FlowState { path, remaining: bytes, rate: 0.0, owner, started: now },
        );
        self.reprofile();
        key
    }

    /// The earliest completion among active flows: `(time, key)`, ties to
    /// the lowest key for determinism.
    pub fn next_completion(&self) -> Option<(SimTime, FlowKey)> {
        let mut best: Option<(SimTime, FlowKey)> = None;
        for (&key, f) in &self.active {
            let t = self.last_sync.add_secs_ceil(f.remaining / f.rate);
            match best {
                Some((bt, _)) if bt <= t => {}
                _ => best = Some((t, FlowKey(key))),
            }
        }
        best
    }

    /// Completes and removes flow `key` at `now`; returns its owner and the
    /// time the flow spent active (ns).
    pub fn complete(&mut self, now: SimTime, key: FlowKey) -> (FlowOwner, u64) {
        self.sync(now);
        let f = self.active.remove(&key.0).expect("flow exists");
        debug_assert!(
            f.remaining <= f.rate * 1e-6 + 1.0,
            "flow completed with {} bytes left",
            f.remaining
        );
        self.reprofile();
        (f.owner, now.since(f.started))
    }

    /// Current rate of a flow, bytes/sec (for tests/inspection).
    pub fn rate_of(&self, key: FlowKey) -> Option<f64> {
        self.active.get(&key.0).map(|f| f.rate)
    }

    /// Changes a resource's capacity at time `now` (failure/straggler
    /// injection, QoS throttling). Active flows are synced to `now` first so
    /// progress made at the old rate is preserved, then re-profiled.
    ///
    /// # Panics
    /// Panics if `capacity` is not positive (model a dead resource with a
    /// tiny capacity, not zero, so flows still converge).
    pub fn set_capacity(&mut self, now: SimTime, id: ResourceId, capacity: f64) {
        assert!(capacity > 0.0, "capacity must stay positive");
        self.sync(now);
        self.resources[id.0 as usize].capacity = capacity;
        self.reprofile();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owner() -> FlowOwner {
        FlowOwner { job: 0, tag: FlowTag::LocalRead, background: false }
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let mut net = FlowNet::new();
        let r = net.add_resource("disk", 100.0);
        let k = net.start(SimTime::ZERO, vec![r], 200.0, owner());
        assert_eq!(net.rate_of(k), Some(100.0));
        let (t, key) = net.next_completion().unwrap();
        assert_eq!(key, k);
        assert_eq!(t, SimTime::from_secs(2.0));
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut net = FlowNet::new();
        let r = net.add_resource("disk", 100.0);
        let a = net.start(SimTime::ZERO, vec![r], 100.0, owner());
        let b = net.start(SimTime::ZERO, vec![r], 100.0, owner());
        assert_eq!(net.rate_of(a), Some(50.0));
        assert_eq!(net.rate_of(b), Some(50.0));
        // Both complete at 2s; lowest key first.
        let (t, k) = net.next_completion().unwrap();
        assert_eq!(t, SimTime::from_secs(2.0));
        assert_eq!(k, a);
    }

    #[test]
    fn departure_speeds_up_remaining_flow() {
        let mut net = FlowNet::new();
        let r = net.add_resource("disk", 100.0);
        let a = net.start(SimTime::ZERO, vec![r], 50.0, owner());
        let b = net.start(SimTime::ZERO, vec![r], 150.0, owner());
        // a finishes at 1s (50 bytes at 50 B/s).
        let (t1, k1) = net.next_completion().unwrap();
        assert_eq!(k1, a);
        assert_eq!(t1, SimTime::from_secs(1.0));
        net.complete(t1, a);
        // b had consumed 50 of 150 at the shared rate; 100 left at 100 B/s.
        assert_eq!(net.rate_of(b), Some(100.0));
        let (t2, k2) = net.next_completion().unwrap();
        assert_eq!(k2, b);
        assert_eq!(t2, SimTime::from_secs(2.0));
    }

    #[test]
    fn bottleneck_is_min_over_path() {
        let mut net = FlowNet::new();
        let fast = net.add_resource("nic", 1000.0);
        let slow = net.add_resource("wan", 10.0);
        let k = net.start(SimTime::ZERO, vec![fast, slow], 100.0, owner());
        assert_eq!(net.rate_of(k), Some(10.0));
    }

    #[test]
    fn shared_bottleneck_only_on_common_resource() {
        let mut net = FlowNet::new();
        let shared = net.add_resource("pfs", 100.0);
        let nic_a = net.add_resource("nicA", 1000.0);
        let nic_b = net.add_resource("nicB", 1000.0);
        let a = net.start(SimTime::ZERO, vec![shared, nic_a], 100.0, owner());
        let b = net.start(SimTime::ZERO, vec![shared, nic_b], 100.0, owner());
        assert_eq!(net.rate_of(a), Some(50.0));
        assert_eq!(net.rate_of(b), Some(50.0));
    }

    #[test]
    fn complete_returns_elapsed_time() {
        let mut net = FlowNet::new();
        let r = net.add_resource("disk", 100.0);
        let k = net.start(SimTime::from_secs(1.0), vec![r], 100.0, owner());
        let (t, _) = net.next_completion().unwrap();
        let (_, elapsed) = net.complete(t, k);
        assert_eq!(elapsed, 1_000_000_000);
        assert_eq!(net.active_count(), 0);
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_rejected() {
        FlowNet::new().add_resource("bad", 0.0);
    }
}

#[cfg(test)]
mod capacity_tests {
    use super::*;

    #[test]
    fn capacity_change_preserves_progress() {
        let mut net = FlowNet::new();
        let r = net.add_resource("disk", 100.0);
        let k = net.start(SimTime::ZERO, vec![r], 200.0, FlowOwner { job: 0, tag: crate::breakdown::FlowTag::LocalRead, background: false });
        // After 1s at 100 B/s, 100 bytes remain; halve the capacity.
        net.set_capacity(SimTime::from_secs(1.0), r, 50.0);
        assert_eq!(net.rate_of(k), Some(50.0));
        let (t, _) = net.next_completion().unwrap();
        // 100 bytes at 50 B/s from t=1s ⇒ completes at 3s.
        assert_eq!(t, SimTime::from_secs(3.0));
    }

    #[test]
    #[should_panic(expected = "capacity must stay positive")]
    fn zero_capacity_change_rejected() {
        let mut net = FlowNet::new();
        let r = net.add_resource("disk", 100.0);
        net.set_capacity(SimTime::ZERO, r, 0.0);
    }
}
