//! Fluid-flow bandwidth model with fair sharing — incremental engine.
//!
//! Every transfer is a *flow* over a path of resources (storage device,
//! NICs, shared filesystem servers, WAN links). At any instant a flow's rate
//! is `min over path resources of (capacity / concurrent flows)` — the
//! classic bottleneck fair-share approximation used by fluid simulators.
//! Between rate changes a flow progresses linearly, so the next completion
//! time is exact.
//!
//! # Incremental algorithm
//!
//! The engine maintains three auxiliary structures so that topology events
//! (`start`, `complete`, `set_capacity`) cost `O(affected)` instead of
//! `O(all flows)`:
//!
//! * **per-resource load counts** (`load[r]` = number of active flows whose
//!   path crosses `r`), updated in `O(|path|)` when a flow enters or leaves;
//! * **a resource → flows inverted index** (`flows_on[r]`), so the set of
//!   flows whose rate *might* change is the union of the index entries of
//!   the touched resources — never the whole network;
//! * **a lazy-invalidation binary heap** of predicted completion times keyed
//!   `(time, key, generation)`. Only re-rated flows push a fresh entry; a
//!   flow's `generation` counter invalidates its older entries, which are
//!   discarded when they surface at the top of the heap. `next_completion`
//!   is therefore `O(log n)` amortized instead of a linear scan.
//!
//! A flow's `remaining` bytes are *materialized* (advanced to the current
//! time) only when its rate actually changes value. Because progress is
//! linear between rate changes, materializing once over a long interval is
//! exactly equal to materializing at every intermediate event — the update
//! is batching-invariant, which is what makes the incremental engine
//! bit-identical to the naive full-recompute model in [`naive`]. That
//! equivalence is enforced by a differential property test over randomized
//! start/complete/capacity-change sequences (`tests/flow_differential.rs`).

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use serde::{Deserialize, Serialize};

use crate::breakdown::FlowTag;
use crate::time::SimTime;

/// Index of a bandwidth resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ResourceId(pub u32);

/// A capacity-limited resource (bytes per second).
#[derive(Debug, Clone)]
pub struct Resource {
    pub name: String,
    pub capacity: f64,
}

/// Handle to an active flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowKey(pub u64);

/// Opaque per-flow payload the engine uses to resume the owning job.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FlowOwner {
    pub job: u32,
    pub tag: FlowTag,
    /// Background flows (e.g. buffered-write drains) are accounted to the
    /// job but do not block its progress.
    pub background: bool,
}

/// Slab slot for one flow. Slots are recycled through a free list; `gen`
/// is bumped on every re-rate *and* on removal, so a heap entry is valid
/// exactly when its generation matches the slot's current one.
#[derive(Debug)]
struct Slot {
    /// External key (monotone, never reused — the determinism tie-break).
    key: u64,
    gen: u64,
    /// Epoch marker for O(1) dedup while collecting affected flows.
    mark: u64,
    path: Vec<ResourceId>,
    /// `pos[i]` = this slot's position inside `flows_on[path[i]]`.
    pos: Vec<u32>,
    /// Bytes left as of `synced` (the flow's last rate change).
    remaining: f64,
    rate: f64,
    owner: FlowOwner,
    started: SimTime,
    /// Time at which `remaining` was last materialized.
    synced: SimTime,
}

/// The flow network: resources plus active flows.
///
/// Uses interior mutability for the completion heap so `next_completion`
/// can discard stale entries while keeping its historical `&self`
/// signature. The network is single-threaded by construction.
#[derive(Debug, Default)]
pub struct FlowNet {
    resources: Vec<Resource>,
    /// `load[r]` = number of active path crossings of resource `r`.
    load: Vec<u32>,
    /// `flows_on[r]` = `(slot, path index)` of each active crossing of `r`;
    /// the path index lets a swap-remove patch the moved entry's `pos`.
    flows_on: Vec<Vec<(u32, u32)>>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    key_to_slot: HashMap<u64, u32>,
    next_key: u64,
    epoch: u64,
    /// Scratch list of affected slots (kept to reuse its allocation).
    affected: Vec<u32>,
    /// Min-heap of predicted completions (lazy invalidation).
    heap: RefCell<BinaryHeap<HeapEntry>>,
}

/// Heap entry: `(predicted completion ns, key, slot, generation)` — ordered
/// by time then key, matching the lowest-key tie-break.
type HeapEntry = Reverse<(u64, u64, u32, u64)>;

impl FlowNet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resource; capacities must be positive.
    pub fn add_resource(&mut self, name: &str, capacity: f64) -> ResourceId {
        assert!(capacity > 0.0, "resource {name} must have positive capacity");
        let id = ResourceId(self.resources.len() as u32);
        self.resources.push(Resource { name: name.to_owned(), capacity });
        self.load.push(0);
        self.flows_on.push(Vec::new());
        id
    }

    pub fn resource(&self, id: ResourceId) -> &Resource {
        &self.resources[id.0 as usize]
    }

    /// Number of registered resources (IDs are `0..resource_count()`).
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Number of active flows currently crossing `id` (instantaneous load).
    pub fn load_of(&self, id: ResourceId) -> u32 {
        self.load[id.0 as usize]
    }

    pub fn active_count(&self) -> usize {
        self.key_to_slot.len()
    }

    /// Fair-share rate of a path under the current load counts.
    fn fair_rate(resources: &[Resource], load: &[u32], path: &[ResourceId]) -> f64 {
        let mut rate = f64::INFINITY;
        for r in path {
            let share = resources[r.0 as usize].capacity / load[r.0 as usize] as f64;
            rate = rate.min(share);
        }
        assert!(rate.is_finite(), "flows must traverse at least one resource");
        rate
    }

    /// Advances a flow's `remaining` to `now` at its current rate.
    fn materialize(f: &mut Slot, now: SimTime) {
        let dt = now.since(f.synced) as f64 / 1e9;
        if dt > 0.0 {
            f.remaining = (f.remaining - f.rate * dt).max(0.0);
        }
        f.synced = now;
    }

    /// Collects into `self.affected` the slots (other than `exclude`)
    /// crossing any resource in `path`, deduplicated via the epoch mark.
    fn collect_affected(&mut self, path: &[ResourceId], exclude: u32) {
        self.epoch += 1;
        self.affected.clear();
        for r in path {
            for &(slot, _) in &self.flows_on[r.0 as usize] {
                if slot == exclude || self.slots[slot as usize].mark == self.epoch {
                    continue;
                }
                self.slots[slot as usize].mark = self.epoch;
                self.affected.push(slot);
            }
        }
    }

    /// Recomputes the rate of every flow in `self.affected`; flows whose
    /// rate actually changed value are materialized at `now` and get a
    /// fresh heap entry. Flows whose rate is unchanged (bottleneck
    /// elsewhere) are left untouched — their heap entry stays valid.
    fn rerate_affected(&mut self, now: SimTime) {
        let heap = self.heap.get_mut();
        for i in 0..self.affected.len() {
            let slot = self.affected[i];
            let f = &mut self.slots[slot as usize];
            let new_rate = Self::fair_rate(&self.resources, &self.load, &f.path);
            if new_rate.to_bits() != f.rate.to_bits() {
                Self::materialize(f, now);
                f.rate = new_rate;
                f.gen += 1;
                let t = f.synced.add_secs_ceil(f.remaining / f.rate);
                heap.push(Reverse((t.0, f.key, slot, f.gen)));
            }
        }
        // Bound heap growth: stale entries are normally discarded lazily by
        // `next_completion`, but a long run of re-rates between polls could
        // otherwise pile them up.
        if heap.len() > 2 * self.key_to_slot.len() + 64 {
            let slots = &self.slots;
            let live: Vec<_> = heap
                .drain()
                .filter(|Reverse((_, _, slot, gen))| slots[*slot as usize].gen == *gen)
                .collect();
            heap.extend(live);
        }
    }

    /// Starts a flow of `bytes` over `path` at time `now`. The path is
    /// copied into the flow's (recycled) slot, so steady-state churn does
    /// not allocate: a slot freed by `complete`/`cancel` keeps its `path`
    /// and `pos` buffers for the next flow through it.
    ///
    /// # Panics
    /// Panics if `path` is empty or `bytes` is not positive — callers handle
    /// zero-byte transfers without entering the flow network.
    pub fn start(&mut self, now: SimTime, path: &[ResourceId], bytes: f64, owner: FlowOwner) -> FlowKey {
        assert!(!path.is_empty());
        assert!(bytes > 0.0);
        let key = FlowKey(self.next_key);
        self.next_key += 1;
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(Slot {
                    key: 0,
                    gen: 0,
                    mark: 0,
                    path: Vec::new(),
                    pos: Vec::new(),
                    remaining: 0.0,
                    rate: 0.0,
                    owner,
                    started: now,
                    synced: now,
                });
                (self.slots.len() - 1) as u32
            }
        };
        {
            let f = &mut self.slots[slot as usize];
            f.path.clear();
            f.pos.clear();
        }
        for (i, r) in path.iter().enumerate() {
            self.load[r.0 as usize] += 1;
            let p = self.flows_on[r.0 as usize].len() as u32;
            self.flows_on[r.0 as usize].push((slot, i as u32));
            let f = &mut self.slots[slot as usize];
            f.path.push(*r);
            f.pos.push(p);
        }
        self.collect_affected(path, slot);
        let rate = Self::fair_rate(&self.resources, &self.load, path);
        let t = now.add_secs_ceil(bytes / rate);
        {
            let f = &mut self.slots[slot as usize];
            f.key = key.0;
            f.gen += 1;
            f.remaining = bytes;
            f.rate = rate;
            f.owner = owner;
            f.started = now;
            f.synced = now;
            let gen = f.gen;
            self.heap.get_mut().push(Reverse((t.0, key.0, slot, gen)));
        }
        self.key_to_slot.insert(key.0, slot);
        self.rerate_affected(now);
        key
    }

    /// The earliest completion among active flows: `(time, key)`, ties to
    /// the lowest key for determinism.
    pub fn next_completion(&self) -> Option<(SimTime, FlowKey)> {
        let mut heap = self.heap.borrow_mut();
        while let Some(&Reverse((t, key, slot, gen))) = heap.peek() {
            if self.slots[slot as usize].gen == gen {
                return Some((SimTime(t), FlowKey(key)));
            }
            heap.pop();
        }
        None
    }

    /// Completes and removes flow `key` at `now`; returns its owner and the
    /// time the flow spent active (ns).
    pub fn complete(&mut self, now: SimTime, key: FlowKey) -> (FlowOwner, u64) {
        let rate = self.rate_of(key).expect("flow exists");
        let (owner, elapsed, remaining) = self.remove(now, key);
        // Slack scales with rate: one rate-quantum of rounding plus a byte.
        debug_assert!(
            remaining <= rate * 1e-6 + 1.0,
            "flow completed with {remaining} bytes left"
        );
        let _ = (rate, remaining);
        (owner, elapsed)
    }

    /// Cancels and removes flow `key` at `now` (the owning job failed).
    /// Returns the owner, the time the flow spent active (ns), and the
    /// bytes it had *not* yet moved — callers subtract from the flow's
    /// original size to account wasted transfer.
    pub fn cancel(&mut self, now: SimTime, key: FlowKey) -> (FlowOwner, u64, f64) {
        self.remove(now, key)
    }

    /// Shared removal path for completion and cancellation.
    fn remove(&mut self, now: SimTime, key: FlowKey) -> (FlowOwner, u64, f64) {
        let slot = self.key_to_slot.remove(&key.0).expect("flow exists");
        let f = &mut self.slots[slot as usize];
        Self::materialize(f, now);
        f.gen += 1; // invalidate any heap entries for this flow
        let owner = f.owner;
        let elapsed = now.since(f.started);
        let remaining = f.remaining;
        let path = std::mem::take(&mut f.path);
        let pos = std::mem::take(&mut f.pos);
        // Unlink from every resource; swap-remove keeps the lists dense and
        // patches the moved entry's back-pointer.
        for (i, r) in path.iter().enumerate() {
            let ri = r.0 as usize;
            self.load[ri] -= 1;
            let p = pos[i] as usize;
            let list = &mut self.flows_on[ri];
            list.swap_remove(p);
            if let Some(&(moved_slot, moved_idx)) = list.get(p) {
                self.slots[moved_slot as usize].pos[moved_idx as usize] = p as u32;
            }
        }
        self.collect_affected(&path, slot);
        // Hand the buffers back to the slot so the next flow through it
        // starts allocation-free.
        let f = &mut self.slots[slot as usize];
        f.path = path;
        f.pos = pos;
        self.free.push(slot);
        self.rerate_affected(now);
        (owner, elapsed, remaining)
    }

    /// Current rate of a flow, bytes/sec (for tests/inspection).
    pub fn rate_of(&self, key: FlowKey) -> Option<f64> {
        self.key_to_slot.get(&key.0).map(|&s| self.slots[s as usize].rate)
    }

    /// Changes a resource's capacity at time `now` (failure/straggler
    /// injection, QoS throttling). Only flows crossing `id` can change
    /// rate; each such flow is synced to `now` before the new rate applies,
    /// so progress made at the old rate is preserved.
    ///
    /// # Panics
    /// Panics if `capacity` is not positive (model a dead resource with a
    /// tiny capacity, not zero, so flows still converge).
    pub fn set_capacity(&mut self, now: SimTime, id: ResourceId, capacity: f64) {
        assert!(capacity > 0.0, "capacity must stay positive");
        self.resources[id.0 as usize].capacity = capacity;
        self.collect_affected(&[id], u32::MAX);
        self.rerate_affected(now);
    }

    /// Captures the complete engine state — slots (including recycled ones,
    /// whose generation counters keep stale heap entries invalid), free
    /// list, inverted index, and the lazy completion heap — so a restored
    /// network replays the exact same completions, tie-breaks, and heap
    /// compactions as one that was never serialized. Floats travel as
    /// IEEE-754 bit patterns.
    pub fn snapshot(&self) -> FlowNetSnapshot {
        let mut heap: Vec<(u64, u64, u32, u64)> =
            self.heap.borrow().iter().map(|Reverse(e)| *e).collect();
        heap.sort_unstable();
        FlowNetSnapshot {
            resources: self
                .resources
                .iter()
                .map(|r| (r.name.clone(), r.capacity.to_bits()))
                .collect(),
            load: self.load.clone(),
            flows_on: self.flows_on.clone(),
            slots: self
                .slots
                .iter()
                .map(|s| SlotSnapshot {
                    key: s.key,
                    gen: s.gen,
                    mark: s.mark,
                    path: s.path.iter().map(|r| r.0).collect(),
                    pos: s.pos.clone(),
                    remaining_bits: s.remaining.to_bits(),
                    rate_bits: s.rate.to_bits(),
                    owner: s.owner,
                    started_ns: s.started.ns(),
                    synced_ns: s.synced.ns(),
                })
                .collect(),
            free: self.free.clone(),
            next_key: self.next_key,
            epoch: self.epoch,
            heap,
        }
    }

    /// Rebuilds a network from a [`FlowNet::snapshot`]. The `key → slot`
    /// index is derived (every slot not on the free list is live).
    pub fn from_snapshot(snap: FlowNetSnapshot) -> Self {
        let slots: Vec<Slot> = snap
            .slots
            .into_iter()
            .map(|s| Slot {
                key: s.key,
                gen: s.gen,
                mark: s.mark,
                path: s.path.into_iter().map(ResourceId).collect(),
                pos: s.pos,
                remaining: f64::from_bits(s.remaining_bits),
                rate: f64::from_bits(s.rate_bits),
                owner: s.owner,
                started: SimTime(s.started_ns),
                synced: SimTime(s.synced_ns),
            })
            .collect();
        let free_set: std::collections::HashSet<u32> = snap.free.iter().copied().collect();
        let key_to_slot = slots
            .iter()
            .enumerate()
            .filter(|(i, _)| !free_set.contains(&(*i as u32)))
            .map(|(i, s)| (s.key, i as u32))
            .collect();
        FlowNet {
            resources: snap
                .resources
                .into_iter()
                .map(|(name, bits)| Resource { name, capacity: f64::from_bits(bits) })
                .collect(),
            load: snap.load,
            flows_on: snap.flows_on,
            slots,
            free: snap.free,
            key_to_slot,
            next_key: snap.next_key,
            epoch: snap.epoch,
            affected: Vec::new(),
            heap: RefCell::new(snap.heap.into_iter().map(Reverse).collect()),
        }
    }
}

/// Checkpointable state of one flow slot (see [`FlowNet::snapshot`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlotSnapshot {
    pub key: u64,
    pub gen: u64,
    pub mark: u64,
    pub path: Vec<u32>,
    pub pos: Vec<u32>,
    pub remaining_bits: u64,
    pub rate_bits: u64,
    pub owner: FlowOwner,
    pub started_ns: u64,
    pub synced_ns: u64,
}

/// Complete serializable state of a [`FlowNet`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowNetSnapshot {
    /// `(name, capacity bits)` in id order — capacities are snapshotted
    /// because degradation windows mutate them mid-run.
    pub resources: Vec<(String, u64)>,
    pub load: Vec<u32>,
    pub flows_on: Vec<Vec<(u32, u32)>>,
    pub slots: Vec<SlotSnapshot>,
    pub free: Vec<u32>,
    pub next_key: u64,
    pub epoch: u64,
    /// Heap entries `(time, key, slot, gen)` sorted ascending; stale
    /// entries are preserved so lazy-invalidation behavior is unchanged.
    pub heap: Vec<(u64, u64, u32, u64)>,
}

/// Naive full-recompute reference model.
///
/// Implements the *same* fair-share semantics as [`FlowNet`] with the
/// simplest possible data structures: every topology event recomputes every
/// flow's rate from scratch (`O(flows × path)`), and `next_completion` is a
/// linear scan. It exists as the oracle for the old-vs-new differential
/// property test and as the baseline for the event-loop benchmarks; it is
/// not used by the simulator.
pub mod naive {
    use super::{FlowKey, FlowOwner, Resource, ResourceId, SimTime};
    use std::collections::BTreeMap;

    #[derive(Debug)]
    struct NaiveFlow {
        path: Vec<ResourceId>,
        remaining: f64,
        rate: f64,
        owner: FlowOwner,
        started: SimTime,
        synced: SimTime,
    }

    /// Reference flow network with identical observable behavior to
    /// [`super::FlowNet`].
    #[derive(Debug, Default)]
    pub struct NaiveFlowNet {
        resources: Vec<Resource>,
        active: BTreeMap<u64, NaiveFlow>,
        next_key: u64,
    }

    impl NaiveFlowNet {
        pub fn new() -> Self {
            Self::default()
        }

        pub fn add_resource(&mut self, name: &str, capacity: f64) -> ResourceId {
            assert!(capacity > 0.0, "resource {name} must have positive capacity");
            let id = ResourceId(self.resources.len() as u32);
            self.resources.push(Resource { name: name.to_owned(), capacity });
            id
        }

        pub fn active_count(&self) -> usize {
            self.active.len()
        }

        /// Recomputes every rate from scratch; flows whose rate changed
        /// value are materialized at `now` (same policy as the incremental
        /// engine, so the two stay bit-identical).
        fn reprofile(&mut self, now: SimTime) {
            let mut load = vec![0u32; self.resources.len()];
            for f in self.active.values() {
                for r in &f.path {
                    load[r.0 as usize] += 1;
                }
            }
            for f in self.active.values_mut() {
                let mut rate = f64::INFINITY;
                for r in &f.path {
                    let share = self.resources[r.0 as usize].capacity / load[r.0 as usize] as f64;
                    rate = rate.min(share);
                }
                assert!(rate.is_finite(), "flows must traverse at least one resource");
                if rate.to_bits() != f.rate.to_bits() {
                    let dt = now.since(f.synced) as f64 / 1e9;
                    if dt > 0.0 {
                        f.remaining = (f.remaining - f.rate * dt).max(0.0);
                    }
                    f.synced = now;
                    f.rate = rate;
                }
            }
        }

        pub fn start(&mut self, now: SimTime, path: &[ResourceId], bytes: f64, owner: FlowOwner) -> FlowKey {
            assert!(!path.is_empty());
            assert!(bytes > 0.0);
            let key = FlowKey(self.next_key);
            self.next_key += 1;
            self.active.insert(
                key.0,
                NaiveFlow {
                    path: path.to_vec(),
                    remaining: bytes,
                    rate: 0.0,
                    owner,
                    started: now,
                    synced: now,
                },
            );
            self.reprofile(now);
            key
        }

        pub fn next_completion(&self) -> Option<(SimTime, FlowKey)> {
            let mut best: Option<(SimTime, FlowKey)> = None;
            for (&key, f) in &self.active {
                let t = f.synced.add_secs_ceil(f.remaining / f.rate);
                match best {
                    Some((bt, _)) if bt <= t => {}
                    _ => best = Some((t, FlowKey(key))),
                }
            }
            best
        }

        pub fn complete(&mut self, now: SimTime, key: FlowKey) -> (FlowOwner, u64) {
            let f = self.active.remove(&key.0).expect("flow exists");
            self.reprofile(now);
            (f.owner, now.since(f.started))
        }

        pub fn rate_of(&self, key: FlowKey) -> Option<f64> {
            self.active.get(&key.0).map(|f| f.rate)
        }

        pub fn set_capacity(&mut self, now: SimTime, id: ResourceId, capacity: f64) {
            assert!(capacity > 0.0, "capacity must stay positive");
            self.resources[id.0 as usize].capacity = capacity;
            self.reprofile(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owner() -> FlowOwner {
        FlowOwner { job: 0, tag: FlowTag::LocalRead, background: false }
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let mut net = FlowNet::new();
        let r = net.add_resource("disk", 100.0);
        let k = net.start(SimTime::ZERO, &[r], 200.0, owner());
        assert_eq!(net.rate_of(k), Some(100.0));
        let (t, key) = net.next_completion().unwrap();
        assert_eq!(key, k);
        assert_eq!(t, SimTime::from_secs(2.0));
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut net = FlowNet::new();
        let r = net.add_resource("disk", 100.0);
        let a = net.start(SimTime::ZERO, &[r], 100.0, owner());
        let b = net.start(SimTime::ZERO, &[r], 100.0, owner());
        assert_eq!(net.rate_of(a), Some(50.0));
        assert_eq!(net.rate_of(b), Some(50.0));
        // Both complete at 2s; lowest key first.
        let (t, k) = net.next_completion().unwrap();
        assert_eq!(t, SimTime::from_secs(2.0));
        assert_eq!(k, a);
    }

    #[test]
    fn departure_speeds_up_remaining_flow() {
        let mut net = FlowNet::new();
        let r = net.add_resource("disk", 100.0);
        let a = net.start(SimTime::ZERO, &[r], 50.0, owner());
        let b = net.start(SimTime::ZERO, &[r], 150.0, owner());
        // a finishes at 1s (50 bytes at 50 B/s).
        let (t1, k1) = net.next_completion().unwrap();
        assert_eq!(k1, a);
        assert_eq!(t1, SimTime::from_secs(1.0));
        net.complete(t1, a);
        // b had consumed 50 of 150 at the shared rate; 100 left at 100 B/s.
        assert_eq!(net.rate_of(b), Some(100.0));
        let (t2, k2) = net.next_completion().unwrap();
        assert_eq!(k2, b);
        assert_eq!(t2, SimTime::from_secs(2.0));
    }

    #[test]
    fn bottleneck_is_min_over_path() {
        let mut net = FlowNet::new();
        let fast = net.add_resource("nic", 1000.0);
        let slow = net.add_resource("wan", 10.0);
        let k = net.start(SimTime::ZERO, &[fast, slow], 100.0, owner());
        assert_eq!(net.rate_of(k), Some(10.0));
    }

    #[test]
    fn shared_bottleneck_only_on_common_resource() {
        let mut net = FlowNet::new();
        let shared = net.add_resource("pfs", 100.0);
        let nic_a = net.add_resource("nicA", 1000.0);
        let nic_b = net.add_resource("nicB", 1000.0);
        let a = net.start(SimTime::ZERO, &[shared, nic_a], 100.0, owner());
        let b = net.start(SimTime::ZERO, &[shared, nic_b], 100.0, owner());
        assert_eq!(net.rate_of(a), Some(50.0));
        assert_eq!(net.rate_of(b), Some(50.0));
    }

    #[test]
    fn complete_returns_elapsed_time() {
        let mut net = FlowNet::new();
        let r = net.add_resource("disk", 100.0);
        let k = net.start(SimTime::from_secs(1.0), &[r], 100.0, owner());
        let (t, _) = net.next_completion().unwrap();
        let (_, elapsed) = net.complete(t, k);
        assert_eq!(elapsed, 1_000_000_000);
        assert_eq!(net.active_count(), 0);
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_rejected() {
        FlowNet::new().add_resource("bad", 0.0);
    }

    #[test]
    fn cancel_mid_flight_reports_remaining_and_frees_capacity() {
        let mut net = FlowNet::new();
        let r = net.add_resource("disk", 100.0);
        let a = net.start(SimTime::ZERO, &[r], 200.0, owner());
        let b = net.start(SimTime::ZERO, &[r], 200.0, owner());
        // After 1s at 50 B/s each, cancel a: 150 bytes unmoved.
        let (_, elapsed, remaining) = net.cancel(SimTime::from_secs(1.0), a);
        assert_eq!(elapsed, 1_000_000_000);
        assert_eq!(remaining, 150.0);
        // b gets the full disk back: 150 left at 100 B/s ⇒ done at 2.5s.
        assert_eq!(net.rate_of(b), Some(100.0));
        let (t, k) = net.next_completion().unwrap();
        assert_eq!((t, k), (SimTime::from_secs(2.5), b));
        assert_eq!(net.active_count(), 1);
    }

    #[test]
    fn disjoint_flow_is_not_rerated() {
        // A start on disjoint resources must leave an unrelated flow's rate
        // and predicted completion untouched (the point of the index).
        let mut net = FlowNet::new();
        let d1 = net.add_resource("disk1", 100.0);
        let d2 = net.add_resource("disk2", 100.0);
        let a = net.start(SimTime::ZERO, &[d1], 100.0, owner());
        let before = net.next_completion().unwrap();
        let b = net.start(SimTime::from_secs(0.25), &[d2], 100.0, owner());
        assert_eq!(net.rate_of(a), Some(100.0));
        assert_eq!(net.rate_of(b), Some(100.0));
        // a is still predicted first, at the original time.
        assert_eq!(net.next_completion().unwrap(), before);
    }

    #[test]
    fn unchanged_rate_keeps_prediction_stable() {
        // b's bottleneck is its private slow disk; sharing the fat pfs link
        // with a new flow does not change b's rate, so b must not be
        // re-rated (rate value identical, no new heap entry needed).
        let mut net = FlowNet::new();
        let pfs = net.add_resource("pfs", 1000.0);
        let slow = net.add_resource("slow", 10.0);
        let b = net.start(SimTime::ZERO, &[pfs, slow], 10.0, owner());
        assert_eq!(net.rate_of(b), Some(10.0));
        let before = net.next_completion().unwrap();
        net.start(SimTime::from_secs(0.5), &[pfs], 500.0, owner());
        assert_eq!(net.rate_of(b), Some(10.0));
        assert_eq!(net.next_completion().unwrap(), before);
    }

    #[test]
    fn stale_heap_entries_are_discarded() {
        // Repeated re-rates leave stale predictions behind; the earliest
        // *valid* one must win.
        let mut net = FlowNet::new();
        let r = net.add_resource("disk", 100.0);
        let a = net.start(SimTime::ZERO, &[r], 100.0, owner());
        // Slow a down: its original 1s prediction is now stale.
        net.set_capacity(SimTime::ZERO, r, 10.0);
        let (t, k) = net.next_completion().unwrap();
        assert_eq!(k, a);
        assert_eq!(t, SimTime::from_secs(10.0));
        // Speed it back up: the 10s prediction goes stale in turn.
        net.set_capacity(SimTime::ZERO, r, 100.0);
        let (t, _) = net.next_completion().unwrap();
        assert_eq!(t, SimTime::from_secs(1.0));
    }

    #[test]
    fn load_index_consistent_after_churn() {
        let mut net = FlowNet::new();
        let r = net.add_resource("disk", 100.0);
        for i in 0..10 {
            net.start(SimTime::ZERO, &[r], 100.0 + i as f64, owner());
        }
        while let Some((t, k)) = net.next_completion() {
            net.complete(t, k);
        }
        assert_eq!(net.active_count(), 0);
        assert_eq!(net.load[r.0 as usize], 0);
        assert!(net.flows_on[r.0 as usize].is_empty());
        assert_eq!(net.next_completion(), None);
    }
}

#[cfg(test)]
mod capacity_tests {
    use super::*;

    #[test]
    fn capacity_change_preserves_progress() {
        let mut net = FlowNet::new();
        let r = net.add_resource("disk", 100.0);
        let k = net.start(SimTime::ZERO, &[r], 200.0, FlowOwner { job: 0, tag: crate::breakdown::FlowTag::LocalRead, background: false });
        // After 1s at 100 B/s, 100 bytes remain; halve the capacity.
        net.set_capacity(SimTime::from_secs(1.0), r, 50.0);
        assert_eq!(net.rate_of(k), Some(50.0));
        let (t, _) = net.next_completion().unwrap();
        // 100 bytes at 50 B/s from t=1s ⇒ completes at 3s.
        assert_eq!(t, SimTime::from_secs(3.0));
    }

    #[test]
    #[should_panic(expected = "capacity must stay positive")]
    fn zero_capacity_change_rejected() {
        let mut net = FlowNet::new();
        let r = net.add_resource("disk", 100.0);
        net.set_capacity(SimTime::ZERO, r, 0.0);
    }
}
