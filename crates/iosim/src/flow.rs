//! Fluid-flow bandwidth model with fair sharing — incremental engine.
//!
//! Every transfer is a *flow* over a path of resources (storage device,
//! NICs, shared filesystem servers, WAN links). At any instant a flow's rate
//! is `min over path resources of (capacity / concurrent flows)` — the
//! classic bottleneck fair-share approximation used by fluid simulators.
//! Between rate changes a flow progresses linearly, so the next completion
//! time is exact.
//!
//! # Incremental algorithm
//!
//! The engine maintains auxiliary structures so that topology events
//! (`start`, `complete`, `set_capacity`) cost `O(affected)` instead of
//! `O(all flows)`:
//!
//! * **per-resource load counts** (`load[r]` = number of active flows whose
//!   path crosses `r`), updated in `O(|path|)` when a flow enters or leaves;
//! * **a resource → flows inverted index** (`flows_on[r]`), so the set of
//!   flows whose rate *might* change is the union of the index entries of
//!   the touched resources — never the whole network;
//! * **a group-coverage lazy heap**: every topology event gathers the flows
//!   whose rate actually changed into one fresh *group* and pushes a single
//!   heap entry — the group's earliest predicted completion — instead of one
//!   entry per flow. A heap entry `(t, key, slot, slot_gen, group, group_gen)`
//!   is *valid* while `slot_gen` matches the slot; when it surfaces stale but
//!   its group is still live, the group's current minimum is recomputed and
//!   re-pushed (a *refresh*). The invariant that makes this sound: a slot's
//!   group membership changes **only** together with a `gen` bump (re-rate or
//!   removal), so a live group's members always carry current rates and
//!   predictions. `next_completion` is `O(log n)` amortized with `O(group)`
//!   refreshes, and hot paths that re-rate a thousand flows per event do one
//!   heap push instead of a thousand.
//!
//! A flow's `remaining` bytes are *materialized* (advanced to the current
//! time) only when its rate actually changes value. Because progress is
//! linear between rate changes, materializing once over a long interval is
//! exactly equal to materializing at every intermediate event — the update
//! is batching-invariant, which is what makes the incremental engine
//! bit-identical to the naive full-recompute model in [`naive`]. That
//! equivalence is enforced by a differential property test over randomized
//! start/complete/capacity-change sequences (`tests/flow_differential.rs`).

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use serde::{Deserialize, Serialize};

use crate::breakdown::FlowTag;
use crate::time::SimTime;

/// Index of a bandwidth resource.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ResourceId(pub u32);

/// A capacity-limited resource (bytes per second).
#[derive(Debug, Clone)]
pub struct Resource {
    pub name: String,
    pub capacity: f64,
}

/// Handle to an active flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowKey(pub u64);

/// Opaque per-flow payload the engine uses to resume the owning job.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FlowOwner {
    pub job: u32,
    pub tag: FlowTag,
    /// Background flows (e.g. buffered-write drains) are accounted to the
    /// job but do not block its progress.
    pub background: bool,
}

/// Sentinel for "slot belongs to no coverage group" (free slots).
const NO_GROUP: u32 = u32::MAX;

/// Inline capacity of [`Tiny`]. Simulator paths cross at most six resources
/// (the longest is a staging union of two three-hop read paths), so the hot
/// loop never leaves the slot's cache lines; longer paths from external
/// callers spill to the heap and stay correct.
const TINY: usize = 6;

/// Fixed-capacity inline vector with heap spill — path storage for a slot.
/// Rerating reads every affected flow's path once per topology event, so
/// keeping the common short path inside the slot (instead of behind a `Vec`
/// pointer) removes one dependent cache miss per flow per event.
#[derive(Debug, Clone, Default)]
struct Tiny<T: Copy + Default> {
    len: u32,
    buf: [T; TINY],
    /// Boxed so the rare spill costs one pointer (8 B) in every slot
    /// instead of an inline `Vec` (24 B) — the double indirection only
    /// ever taxes the already-slow long-path case.
    #[allow(clippy::box_collection)]
    spill: Option<Box<Vec<T>>>,
}

impl<T: Copy + Default> Tiny<T> {
    fn clear(&mut self) {
        self.len = 0;
        self.spill = None;
    }

    fn push(&mut self, v: T) {
        let l = self.len as usize;
        if l < TINY {
            self.buf[l] = v;
        } else {
            let spill =
                self.spill.get_or_insert_with(|| Box::new(self.buf.to_vec()));
            spill.push(v);
        }
        self.len += 1;
    }

    fn as_slice(&self) -> &[T] {
        match &self.spill {
            Some(spill) => spill,
            None => &self.buf[..self.len as usize],
        }
    }

    fn set(&mut self, i: usize, v: T) {
        match &mut self.spill {
            Some(spill) => spill[i] = v,
            None => self.buf[i] = v,
        }
    }
}

impl<T: Copy + Default> FromIterator<T> for Tiny<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut t = Tiny::default();
        for v in iter {
            t.push(v);
        }
        t
    }
}

/// Rerate-hot state of one flow slot. Every topology event sweeps the
/// *entire* affected set reading exactly these fields, so they are packed
/// into one 56-byte struct (one cache line) separate from the cold tail in
/// [`Slot`]; with a thousand concurrent flows the split roughly halves the
/// per-event memory traffic. Stored in `FlowNet::hot`, parallel to `slots`.
#[derive(Debug)]
struct Hot {
    /// Bytes left as of `synced` (the flow's last rate change).
    remaining: f64,
    rate: f64,
    /// Predicted completion (ns) under the current rate — always equal to
    /// `synced.add_secs_ceil(remaining / rate)` for live slots, so it is
    /// recomputed (not serialized) on snapshot restore.
    pred: u64,
    /// Bumped on every re-rate *and* on removal, so a heap entry is valid
    /// exactly when its generation matches the slot's current one.
    gen: u64,
    /// External key (monotone, never reused — the determinism tie-break).
    key: u64,
    /// Time at which `remaining` was last materialized.
    synced: SimTime,
    /// Coverage group this slot belongs to, and its position in the group's
    /// member list (for O(1) unlink).
    group: u32,
    gpos: u32,
}

/// Cold tail of a flow slot — touched `O(1)` times per flow lifetime
/// (start/remove), never by the per-event rerate sweep. Slots are recycled
/// through a free list shared with their [`Hot`] and path entries.
#[derive(Debug)]
struct Slot {
    /// `pos[i]` = this slot's position inside `flows_on[path[i]]`.
    pos: Tiny<u32>,
    /// Original size of the flow in bytes (constant for its lifetime).
    total: f64,
    owner: FlowOwner,
    started: SimTime,
}

/// A coverage group: the set of flows re-rated together by one topology
/// event. Exactly one heap entry is pushed per group creation; when that
/// entry goes stale the group's current minimum is recomputed lazily.
/// `gen` is bumped when the group empties, invalidating its heap entries;
/// emptied groups (and their member buffers) are recycled through a free
/// list so steady-state churn does not allocate.
#[derive(Debug)]
struct Group {
    gen: u64,
    members: Vec<u32>,
}

/// The flow network: resources plus active flows.
///
/// Uses interior mutability for the completion heap so `next_completion`
/// can discard stale entries while keeping its historical `&self`
/// signature. The network is single-threaded by construction.
#[derive(Debug, Default)]
pub struct FlowNet {
    resources: Vec<Resource>,
    /// `load[r]` = number of active path crossings of resource `r`.
    load: Vec<u32>,
    /// Cached fair share `capacity[r] / load[r]` — the identical division
    /// every flow on `r` would perform, done once per load/capacity change
    /// instead of once per affected flow (bit-identical by construction:
    /// same operands, same rounding). `+inf` while `r` is idle; derived
    /// state, rebuilt on restore.
    share: Vec<f64>,
    /// `flows_on[r]` = `(slot, path index)` of each active crossing of `r`;
    /// the path index lets a swap-remove patch the moved entry's `pos`.
    flows_on: Vec<Vec<(u32, u32)>>,
    /// Rerate-hot slot state (see [`Hot`]), parallel to `slots`.
    hot: Vec<Hot>,
    /// `paths[s]` = slot `s`'s resource path — read by every rerate, kept
    /// out of both [`Hot`] (too big) and [`Slot`] (too cold).
    paths: Vec<Tiny<ResourceId>>,
    slots: Vec<Slot>,
    /// `marks[s]` = epoch marker for slot `s` — O(1) dedup while collecting
    /// affected flows. Kept outside [`Slot`] so the dedup sweep touches a
    /// dense array instead of one cache line per (much larger) slot.
    marks: Vec<u64>,
    free: Vec<u32>,
    key_to_slot: HashMap<u64, u32>,
    next_key: u64,
    epoch: u64,
    /// Scratch list of affected slots (kept to reuse its allocation).
    affected: Vec<u32>,
    /// Scratch list of slots whose rate changed this event (they migrate
    /// into one fresh group together).
    regroup: Vec<u32>,
    /// Coverage-group slab plus free list of emptied groups.
    groups: Vec<Group>,
    gfree: Vec<u32>,
    /// Min-heap of group-coverage completion predictions (lazy refresh).
    heap: RefCell<BinaryHeap<HeapEntry>>,
}

/// Heap entry: `(predicted completion ns, key, slot, slot gen, group,
/// group gen)` — ordered by time then key, matching the lowest-key
/// tie-break. Valid while `slot gen` matches; refreshable while `group
/// gen` matches.
type HeapEntry = Reverse<(u64, u64, u32, u64, u32, u64)>;

impl FlowNet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resource; capacities must be positive.
    pub fn add_resource(&mut self, name: &str, capacity: f64) -> ResourceId {
        assert!(capacity > 0.0, "resource {name} must have positive capacity");
        let id = ResourceId(self.resources.len() as u32);
        self.resources.push(Resource { name: name.to_owned(), capacity });
        self.load.push(0);
        self.share.push(f64::INFINITY);
        self.flows_on.push(Vec::new());
        id
    }

    pub fn resource(&self, id: ResourceId) -> &Resource {
        &self.resources[id.0 as usize]
    }

    /// Number of registered resources (IDs are `0..resource_count()`).
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Number of active flows currently crossing `id` (instantaneous load).
    pub fn load_of(&self, id: ResourceId) -> u32 {
        self.load[id.0 as usize]
    }

    pub fn active_count(&self) -> usize {
        self.key_to_slot.len()
    }

    /// Fair-share rate of a path under the current load counts: the minimum
    /// of the cached per-resource shares.
    fn fair_rate(share: &[f64], path: &[ResourceId]) -> f64 {
        let mut rate = f64::INFINITY;
        for r in path {
            rate = rate.min(share[r.0 as usize]);
        }
        assert!(rate.is_finite(), "flows must traverse at least one resource");
        rate
    }

    /// Refreshes the cached share of resource `r` after a load or capacity
    /// change.
    #[inline]
    fn refresh_share(&mut self, r: usize) {
        self.share[r] = self.resources[r].capacity / self.load[r] as f64;
    }

    /// Advances a flow's `remaining` to `now` at its current rate.
    fn materialize(f: &mut Hot, now: SimTime) {
        let dt = now.since(f.synced) as f64 / 1e9;
        if dt > 0.0 {
            f.remaining = (f.remaining - f.rate * dt).max(0.0);
        }
        f.synced = now;
    }

    /// Collects into `self.affected` the slots (other than `exclude`)
    /// crossing any resource in `path`, deduplicated via the epoch mark.
    fn collect_affected(&mut self, path: &[ResourceId], exclude: u32) {
        self.epoch += 1;
        self.affected.clear();
        for r in path {
            for &(slot, _) in &self.flows_on[r.0 as usize] {
                if slot == exclude || self.marks[slot as usize] == self.epoch {
                    continue;
                }
                self.marks[slot as usize] = self.epoch;
                self.affected.push(slot);
            }
        }
    }

    /// Unlinks a slot from its coverage group (swap-remove with back-pointer
    /// patch). A group that empties bumps its generation — invalidating its
    /// heap entries — and returns to the free list with its member buffer.
    fn unlink_group(&mut self, slot: u32) {
        let gid = self.hot[slot as usize].group;
        if gid == NO_GROUP {
            return;
        }
        self.hot[slot as usize].group = NO_GROUP;
        let g = &mut self.groups[gid as usize];
        let p = self.hot[slot as usize].gpos as usize;
        g.members.swap_remove(p);
        if let Some(&moved) = g.members.get(p) {
            self.hot[moved as usize].gpos = p as u32;
        }
        if g.members.is_empty() {
            g.gen += 1;
            self.gfree.push(gid);
        }
    }

    /// Recomputes the rate of every flow in `self.affected`; flows whose
    /// rate actually changed value are materialized at `now`, migrated into
    /// one fresh coverage group together with `extra` (the slot a `start`
    /// just created, if any), and the group's minimum prediction is pushed
    /// as a single heap entry. Flows whose rate is unchanged (bottleneck
    /// elsewhere) are left untouched — their group coverage stays valid.
    fn rerate_affected(&mut self, now: SimTime, extra: Option<u32>) {
        self.regroup.clear();
        for i in 0..self.affected.len() {
            let slot = self.affected[i];
            let new_rate = Self::fair_rate(&self.share, self.paths[slot as usize].as_slice());
            let f = &mut self.hot[slot as usize];
            if new_rate.to_bits() != f.rate.to_bits() {
                Self::materialize(f, now);
                f.rate = new_rate;
                f.gen += 1;
                f.pred = f.synced.add_secs_ceil(f.remaining / f.rate).0;
                self.regroup.push(slot);
            }
        }
        if let Some(s) = extra {
            self.regroup.push(s);
        }
        if self.regroup.is_empty() {
            return;
        }
        // Fast path: the re-rated set swallows one old group whole — the
        // common shape when every active flow shares one bottleneck — so the
        // group is retired wholesale (clear + gen bump + free, exactly the
        // state the member-by-member unlink would reach) instead of paying a
        // swap-remove and back-pointer patch per member.
        let mut gid0 = NO_GROUP;
        let mut grouped = 0usize;
        let mut uniform = true;
        for &slot in &self.regroup {
            let gid = self.hot[slot as usize].group;
            if gid == NO_GROUP {
                continue;
            }
            if gid0 == NO_GROUP {
                gid0 = gid;
            } else if gid != gid0 {
                uniform = false;
                break;
            }
            grouped += 1;
        }
        if uniform && gid0 != NO_GROUP && grouped == self.groups[gid0 as usize].members.len() {
            let g = &mut self.groups[gid0 as usize];
            g.members.clear();
            g.gen += 1;
            self.gfree.push(gid0);
        } else {
            for i in 0..self.regroup.len() {
                let slot = self.regroup[i];
                self.unlink_group(slot);
            }
        }
        let gid = match self.gfree.pop() {
            Some(g) => g,
            None => {
                self.groups.push(Group { gen: 0, members: Vec::new() });
                (self.groups.len() - 1) as u32
            }
        };
        let ggen = self.groups[gid as usize].gen;
        let mut best = (u64::MAX, u64::MAX, 0u32, 0u64);
        for (i, &slot) in self.regroup.iter().enumerate() {
            let f = &mut self.hot[slot as usize];
            f.group = gid;
            f.gpos = i as u32;
            if (f.pred, f.key) < (best.0, best.1) {
                best = (f.pred, f.key, slot, f.gen);
            }
        }
        // Swap the scratch list in as the group's member buffer (and adopt
        // the group's recycled empty buffer as next event's scratch).
        let recycled = std::mem::take(&mut self.groups[gid as usize].members);
        debug_assert!(recycled.is_empty());
        self.groups[gid as usize].members = std::mem::replace(&mut self.regroup, recycled);
        let heap = self.heap.get_mut();
        heap.push(Reverse((best.0, best.1, best.2, best.3, gid, ggen)));
        // Bound heap growth: stale entries are normally discarded lazily by
        // `next_completion`, but a long run of re-rates between polls could
        // otherwise pile them up. Rebuild to exactly one entry per live
        // group — a deterministic function of the current network state.
        let live_groups = self.groups.len() - self.gfree.len();
        if heap.len() > 2 * live_groups + 64 {
            heap.clear();
            for (gid, g) in self.groups.iter().enumerate() {
                if g.members.is_empty() {
                    continue;
                }
                let mut best = (u64::MAX, u64::MAX, 0u32, 0u64);
                for &m in &g.members {
                    let f = &self.hot[m as usize];
                    if (f.pred, f.key) < (best.0, best.1) {
                        best = (f.pred, f.key, m, f.gen);
                    }
                }
                heap.push(Reverse((best.0, best.1, best.2, best.3, gid as u32, g.gen)));
            }
        }
    }

    /// Starts a flow of `bytes` over `path` at time `now`. The path is
    /// copied into the flow's (recycled) slot, so steady-state churn does
    /// not allocate: a slot freed by `complete`/`cancel` keeps its `path`
    /// and `pos` buffers for the next flow through it.
    ///
    /// # Panics
    /// Panics if `path` is empty or `bytes` is not positive — callers handle
    /// zero-byte transfers without entering the flow network.
    pub fn start(&mut self, now: SimTime, path: &[ResourceId], bytes: f64, owner: FlowOwner) -> FlowKey {
        assert!(!path.is_empty());
        assert!(bytes > 0.0);
        let key = FlowKey(self.next_key);
        self.next_key += 1;
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.marks.push(0);
                self.hot.push(Hot {
                    remaining: 0.0,
                    rate: 0.0,
                    pred: 0,
                    gen: 0,
                    key: 0,
                    synced: now,
                    group: NO_GROUP,
                    gpos: 0,
                });
                self.paths.push(Tiny::default());
                self.slots.push(Slot { pos: Tiny::default(), total: 0.0, owner, started: now });
                (self.slots.len() - 1) as u32
            }
        };
        self.paths[slot as usize].clear();
        self.slots[slot as usize].pos.clear();
        for (i, r) in path.iter().enumerate() {
            self.load[r.0 as usize] += 1;
            self.refresh_share(r.0 as usize);
            let p = self.flows_on[r.0 as usize].len() as u32;
            self.flows_on[r.0 as usize].push((slot, i as u32));
            self.paths[slot as usize].push(*r);
            self.slots[slot as usize].pos.push(p);
        }
        self.collect_affected(path, slot);
        let rate = Self::fair_rate(&self.share, path);
        let t = now.add_secs_ceil(bytes / rate);
        {
            let f = &mut self.hot[slot as usize];
            f.remaining = bytes;
            f.rate = rate;
            f.pred = t.0;
            f.gen += 1;
            f.key = key.0;
            f.synced = now;
            let c = &mut self.slots[slot as usize];
            c.total = bytes;
            c.owner = owner;
            c.started = now;
        }
        self.key_to_slot.insert(key.0, slot);
        self.rerate_affected(now, Some(slot));
        key
    }

    /// The earliest completion among active flows: `(time, key)`, ties to
    /// the lowest key for determinism.
    pub fn next_completion(&self) -> Option<(SimTime, FlowKey)> {
        let mut heap = self.heap.borrow_mut();
        while let Some(&Reverse((t, key, slot, sgen, gid, ggen))) = heap.peek() {
            if self.hot[slot as usize].gen == sgen {
                return Some((SimTime(t), FlowKey(key)));
            }
            heap.pop();
            // The cached minimum went stale, but its group may still be
            // live: recompute the minimum over the group's *current*
            // members (whose rates and predictions are always current —
            // membership only changes together with a gen bump) and push a
            // fresh, valid entry.
            let g = &self.groups[gid as usize];
            if g.gen == ggen && !g.members.is_empty() {
                let mut best = (u64::MAX, u64::MAX, 0u32, 0u64);
                for &m in &g.members {
                    let f = &self.hot[m as usize];
                    if (f.pred, f.key) < (best.0, best.1) {
                        best = (f.pred, f.key, m, f.gen);
                    }
                }
                heap.push(Reverse((best.0, best.1, best.2, best.3, gid, ggen)));
            }
        }
        None
    }

    /// Completes and removes flow `key` at `now`; returns its owner, the
    /// time the flow spent active (ns), and its original size in bytes.
    pub fn complete(&mut self, now: SimTime, key: FlowKey) -> (FlowOwner, u64, f64) {
        let rate = self.rate_of(key).expect("flow exists");
        let (owner, elapsed, remaining, total) = self.remove(now, key);
        // Slack scales with rate: one rate-quantum of rounding plus a byte.
        debug_assert!(
            remaining <= rate * 1e-6 + 1.0,
            "flow completed with {remaining} bytes left"
        );
        let _ = (rate, remaining);
        (owner, elapsed, total)
    }

    /// Cancels and removes flow `key` at `now` (the owning job failed).
    /// Returns the owner, the time the flow spent active (ns), the bytes it
    /// had *not* yet moved, and its original size — callers subtract to
    /// account wasted transfer.
    pub fn cancel(&mut self, now: SimTime, key: FlowKey) -> (FlowOwner, u64, f64, f64) {
        self.remove(now, key)
    }

    /// Shared removal path for completion and cancellation.
    fn remove(&mut self, now: SimTime, key: FlowKey) -> (FlowOwner, u64, f64, f64) {
        let slot = self.key_to_slot.remove(&key.0).expect("flow exists");
        let f = &mut self.hot[slot as usize];
        Self::materialize(f, now);
        f.gen += 1; // invalidate any heap entries for this flow
        let remaining = f.remaining;
        let c = &self.slots[slot as usize];
        let owner = c.owner;
        let elapsed = now.since(c.started);
        let total = c.total;
        let path = std::mem::take(&mut self.paths[slot as usize]);
        let pos = std::mem::take(&mut self.slots[slot as usize].pos);
        self.unlink_group(slot);
        // Unlink from every resource; swap-remove keeps the lists dense and
        // patches the moved entry's back-pointer.
        for (i, r) in path.as_slice().iter().enumerate() {
            let ri = r.0 as usize;
            self.load[ri] -= 1;
            self.refresh_share(ri);
            let p = pos.as_slice()[i] as usize;
            let list = &mut self.flows_on[ri];
            list.swap_remove(p);
            if let Some(&(moved_slot, moved_idx)) = list.get(p) {
                self.slots[moved_slot as usize].pos.set(moved_idx as usize, p as u32);
            }
        }
        self.collect_affected(path.as_slice(), slot);
        // Hand the buffers back to the slot so the next flow through it
        // starts allocation-free.
        self.paths[slot as usize] = path;
        self.slots[slot as usize].pos = pos;
        self.free.push(slot);
        self.rerate_affected(now, None);
        (owner, elapsed, remaining, total)
    }

    /// Current rate of a flow, bytes/sec (for tests/inspection).
    pub fn rate_of(&self, key: FlowKey) -> Option<f64> {
        self.key_to_slot.get(&key.0).map(|&s| self.hot[s as usize].rate)
    }

    /// Original size of a flow in bytes (None once completed/cancelled).
    pub fn bytes_of(&self, key: FlowKey) -> Option<f64> {
        self.key_to_slot.get(&key.0).map(|&s| self.slots[s as usize].total)
    }

    /// Changes a resource's capacity at time `now` (failure/straggler
    /// injection, QoS throttling). Only flows crossing `id` can change
    /// rate; each such flow is synced to `now` before the new rate applies,
    /// so progress made at the old rate is preserved.
    ///
    /// # Panics
    /// Panics if `capacity` is not positive (model a dead resource with a
    /// tiny capacity, not zero, so flows still converge).
    pub fn set_capacity(&mut self, now: SimTime, id: ResourceId, capacity: f64) {
        assert!(capacity > 0.0, "capacity must stay positive");
        self.resources[id.0 as usize].capacity = capacity;
        self.refresh_share(id.0 as usize);
        self.collect_affected(&[id], u32::MAX);
        self.rerate_affected(now, None);
    }

    /// Captures the complete engine state — slots (including recycled ones,
    /// whose generation counters keep stale heap entries invalid), free
    /// list, inverted index, coverage groups, and the lazy completion heap —
    /// so a restored network replays the exact same completions, tie-breaks,
    /// and heap compactions as one that was never serialized. Floats travel
    /// as IEEE-754 bit patterns; per-slot predictions and group back-links
    /// are derived on restore.
    pub fn snapshot(&self) -> FlowNetSnapshot {
        let mut heap: Vec<(u64, u64, u32, u64, u32, u64)> =
            self.heap.borrow().iter().map(|Reverse(e)| *e).collect();
        heap.sort_unstable();
        FlowNetSnapshot {
            resources: self
                .resources
                .iter()
                .map(|r| (r.name.clone(), r.capacity.to_bits()))
                .collect(),
            load: self.load.clone(),
            flows_on: self.flows_on.clone(),
            slots: self
                .slots
                .iter()
                .enumerate()
                .map(|(i, s)| SlotSnapshot {
                    key: self.hot[i].key,
                    gen: self.hot[i].gen,
                    mark: self.marks[i],
                    path: self.paths[i].as_slice().iter().map(|r| r.0).collect(),
                    pos: s.pos.as_slice().to_vec(),
                    remaining_bits: self.hot[i].remaining.to_bits(),
                    total_bits: s.total.to_bits(),
                    rate_bits: self.hot[i].rate.to_bits(),
                    owner: s.owner,
                    started_ns: s.started.ns(),
                    synced_ns: self.hot[i].synced.ns(),
                })
                .collect(),
            free: self.free.clone(),
            next_key: self.next_key,
            epoch: self.epoch,
            groups: self.groups.iter().map(|g| (g.gen, g.members.clone())).collect(),
            gfree: self.gfree.clone(),
            heap,
        }
    }

    /// Rebuilds a network from a [`FlowNet::snapshot`]. The `key → slot`
    /// index, slot → group back-links, and per-slot completion predictions
    /// are derived (every slot not on the free list is live; `pred` is a
    /// pure function of the bit-restored `synced`/`remaining`/`rate`).
    pub fn from_snapshot(snap: FlowNetSnapshot) -> Self {
        let marks: Vec<u64> = snap.slots.iter().map(|s| s.mark).collect();
        let mut hot: Vec<Hot> = snap
            .slots
            .iter()
            .map(|s| Hot {
                remaining: f64::from_bits(s.remaining_bits),
                rate: f64::from_bits(s.rate_bits),
                pred: 0,
                gen: s.gen,
                key: s.key,
                synced: SimTime(s.synced_ns),
                group: NO_GROUP,
                gpos: 0,
            })
            .collect();
        let paths: Vec<Tiny<ResourceId>> = snap
            .slots
            .iter()
            .map(|s| s.path.iter().map(|&r| ResourceId(r)).collect())
            .collect();
        let slots: Vec<Slot> = snap
            .slots
            .into_iter()
            .map(|s| Slot {
                pos: s.pos.into_iter().collect(),
                total: f64::from_bits(s.total_bits),
                owner: s.owner,
                started: SimTime(s.started_ns),
            })
            .collect();
        let free_set: std::collections::HashSet<u32> = snap.free.iter().copied().collect();
        let key_to_slot: HashMap<u64, u32> = hot
            .iter()
            .enumerate()
            .filter(|(i, _)| !free_set.contains(&(*i as u32)))
            .map(|(i, h)| (h.key, i as u32))
            .collect();
        for (i, h) in hot.iter_mut().enumerate() {
            if !free_set.contains(&(i as u32)) {
                h.pred = h.synced.add_secs_ceil(h.remaining / h.rate).0;
            }
        }
        let groups: Vec<Group> = snap
            .groups
            .into_iter()
            .map(|(gen, members)| Group { gen, members })
            .collect();
        for (gid, g) in groups.iter().enumerate() {
            for (i, &m) in g.members.iter().enumerate() {
                hot[m as usize].group = gid as u32;
                hot[m as usize].gpos = i as u32;
            }
        }
        let resources: Vec<Resource> = snap
            .resources
            .into_iter()
            .map(|(name, bits)| Resource { name, capacity: f64::from_bits(bits) })
            .collect();
        let share: Vec<f64> = resources
            .iter()
            .zip(&snap.load)
            .map(|(r, &l)| r.capacity / l as f64)
            .collect();
        FlowNet {
            resources,
            load: snap.load,
            share,
            flows_on: snap.flows_on,
            hot,
            paths,
            slots,
            marks,
            free: snap.free,
            key_to_slot,
            next_key: snap.next_key,
            epoch: snap.epoch,
            affected: Vec::new(),
            regroup: Vec::new(),
            groups,
            gfree: snap.gfree,
            heap: RefCell::new(snap.heap.into_iter().map(Reverse).collect()),
        }
    }
}

/// Checkpointable state of one flow slot (see [`FlowNet::snapshot`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlotSnapshot {
    pub key: u64,
    pub gen: u64,
    pub mark: u64,
    pub path: Vec<u32>,
    pub pos: Vec<u32>,
    pub remaining_bits: u64,
    pub total_bits: u64,
    pub rate_bits: u64,
    pub owner: FlowOwner,
    pub started_ns: u64,
    pub synced_ns: u64,
}

/// Complete serializable state of a [`FlowNet`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowNetSnapshot {
    /// `(name, capacity bits)` in id order — capacities are snapshotted
    /// because degradation windows mutate them mid-run.
    pub resources: Vec<(String, u64)>,
    pub load: Vec<u32>,
    pub flows_on: Vec<Vec<(u32, u32)>>,
    pub slots: Vec<SlotSnapshot>,
    pub free: Vec<u32>,
    pub next_key: u64,
    pub epoch: u64,
    /// Coverage groups as `(generation, member slots)` in slab order,
    /// including recycled (empty) groups so generation counters survive.
    pub groups: Vec<(u64, Vec<u32>)>,
    pub gfree: Vec<u32>,
    /// Heap entries `(time, key, slot, slot gen, group, group gen)` sorted
    /// ascending; stale entries are preserved so lazy-refresh behavior is
    /// unchanged.
    pub heap: Vec<(u64, u64, u32, u64, u32, u64)>,
}

/// Naive full-recompute reference model.
///
/// Implements the *same* fair-share semantics as [`FlowNet`] with the
/// simplest possible data structures: every topology event recomputes every
/// flow's rate from scratch (`O(flows × path)`), and `next_completion` is a
/// linear scan. It exists as the oracle for the old-vs-new differential
/// property test and as the baseline for the event-loop benchmarks; it is
/// not used by the simulator.
pub mod naive {
    use super::{FlowKey, FlowOwner, Resource, ResourceId, SimTime};
    use std::collections::BTreeMap;

    #[derive(Debug)]
    struct NaiveFlow {
        path: Vec<ResourceId>,
        remaining: f64,
        rate: f64,
        owner: FlowOwner,
        started: SimTime,
        synced: SimTime,
    }

    /// Reference flow network with identical observable behavior to
    /// [`super::FlowNet`].
    #[derive(Debug, Default)]
    pub struct NaiveFlowNet {
        resources: Vec<Resource>,
        active: BTreeMap<u64, NaiveFlow>,
        next_key: u64,
    }

    impl NaiveFlowNet {
        pub fn new() -> Self {
            Self::default()
        }

        pub fn add_resource(&mut self, name: &str, capacity: f64) -> ResourceId {
            assert!(capacity > 0.0, "resource {name} must have positive capacity");
            let id = ResourceId(self.resources.len() as u32);
            self.resources.push(Resource { name: name.to_owned(), capacity });
            id
        }

        pub fn active_count(&self) -> usize {
            self.active.len()
        }

        /// Recomputes every rate from scratch; flows whose rate changed
        /// value are materialized at `now` (same policy as the incremental
        /// engine, so the two stay bit-identical).
        fn reprofile(&mut self, now: SimTime) {
            let mut load = vec![0u32; self.resources.len()];
            for f in self.active.values() {
                for r in &f.path {
                    load[r.0 as usize] += 1;
                }
            }
            for f in self.active.values_mut() {
                let mut rate = f64::INFINITY;
                for r in &f.path {
                    let share = self.resources[r.0 as usize].capacity / load[r.0 as usize] as f64;
                    rate = rate.min(share);
                }
                assert!(rate.is_finite(), "flows must traverse at least one resource");
                if rate.to_bits() != f.rate.to_bits() {
                    let dt = now.since(f.synced) as f64 / 1e9;
                    if dt > 0.0 {
                        f.remaining = (f.remaining - f.rate * dt).max(0.0);
                    }
                    f.synced = now;
                    f.rate = rate;
                }
            }
        }

        pub fn start(&mut self, now: SimTime, path: &[ResourceId], bytes: f64, owner: FlowOwner) -> FlowKey {
            assert!(!path.is_empty());
            assert!(bytes > 0.0);
            let key = FlowKey(self.next_key);
            self.next_key += 1;
            self.active.insert(
                key.0,
                NaiveFlow {
                    path: path.to_vec(),
                    remaining: bytes,
                    rate: 0.0,
                    owner,
                    started: now,
                    synced: now,
                },
            );
            self.reprofile(now);
            key
        }

        pub fn next_completion(&self) -> Option<(SimTime, FlowKey)> {
            let mut best: Option<(SimTime, FlowKey)> = None;
            for (&key, f) in &self.active {
                let t = f.synced.add_secs_ceil(f.remaining / f.rate);
                match best {
                    Some((bt, _)) if bt <= t => {}
                    _ => best = Some((t, FlowKey(key))),
                }
            }
            best
        }

        pub fn complete(&mut self, now: SimTime, key: FlowKey) -> (FlowOwner, u64) {
            let f = self.active.remove(&key.0).expect("flow exists");
            self.reprofile(now);
            (f.owner, now.since(f.started))
        }

        pub fn rate_of(&self, key: FlowKey) -> Option<f64> {
            self.active.get(&key.0).map(|f| f.rate)
        }

        pub fn set_capacity(&mut self, now: SimTime, id: ResourceId, capacity: f64) {
            assert!(capacity > 0.0, "capacity must stay positive");
            self.resources[id.0 as usize].capacity = capacity;
            self.reprofile(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owner() -> FlowOwner {
        FlowOwner { job: 0, tag: FlowTag::LocalRead, background: false }
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let mut net = FlowNet::new();
        let r = net.add_resource("disk", 100.0);
        let k = net.start(SimTime::ZERO, &[r], 200.0, owner());
        assert_eq!(net.rate_of(k), Some(100.0));
        let (t, key) = net.next_completion().unwrap();
        assert_eq!(key, k);
        assert_eq!(t, SimTime::from_secs(2.0));
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut net = FlowNet::new();
        let r = net.add_resource("disk", 100.0);
        let a = net.start(SimTime::ZERO, &[r], 100.0, owner());
        let b = net.start(SimTime::ZERO, &[r], 100.0, owner());
        assert_eq!(net.rate_of(a), Some(50.0));
        assert_eq!(net.rate_of(b), Some(50.0));
        // Both complete at 2s; lowest key first.
        let (t, k) = net.next_completion().unwrap();
        assert_eq!(t, SimTime::from_secs(2.0));
        assert_eq!(k, a);
    }

    #[test]
    fn departure_speeds_up_remaining_flow() {
        let mut net = FlowNet::new();
        let r = net.add_resource("disk", 100.0);
        let a = net.start(SimTime::ZERO, &[r], 50.0, owner());
        let b = net.start(SimTime::ZERO, &[r], 150.0, owner());
        // a finishes at 1s (50 bytes at 50 B/s).
        let (t1, k1) = net.next_completion().unwrap();
        assert_eq!(k1, a);
        assert_eq!(t1, SimTime::from_secs(1.0));
        net.complete(t1, a);
        // b had consumed 50 of 150 at the shared rate; 100 left at 100 B/s.
        assert_eq!(net.rate_of(b), Some(100.0));
        let (t2, k2) = net.next_completion().unwrap();
        assert_eq!(k2, b);
        assert_eq!(t2, SimTime::from_secs(2.0));
    }

    #[test]
    fn bottleneck_is_min_over_path() {
        let mut net = FlowNet::new();
        let fast = net.add_resource("nic", 1000.0);
        let slow = net.add_resource("wan", 10.0);
        let k = net.start(SimTime::ZERO, &[fast, slow], 100.0, owner());
        assert_eq!(net.rate_of(k), Some(10.0));
    }

    #[test]
    fn shared_bottleneck_only_on_common_resource() {
        let mut net = FlowNet::new();
        let shared = net.add_resource("pfs", 100.0);
        let nic_a = net.add_resource("nicA", 1000.0);
        let nic_b = net.add_resource("nicB", 1000.0);
        let a = net.start(SimTime::ZERO, &[shared, nic_a], 100.0, owner());
        let b = net.start(SimTime::ZERO, &[shared, nic_b], 100.0, owner());
        assert_eq!(net.rate_of(a), Some(50.0));
        assert_eq!(net.rate_of(b), Some(50.0));
    }

    #[test]
    fn complete_returns_elapsed_time_and_bytes() {
        let mut net = FlowNet::new();
        let r = net.add_resource("disk", 100.0);
        let k = net.start(SimTime::from_secs(1.0), &[r], 100.0, owner());
        assert_eq!(net.bytes_of(k), Some(100.0));
        let (t, _) = net.next_completion().unwrap();
        let (_, elapsed, bytes) = net.complete(t, k);
        assert_eq!(elapsed, 1_000_000_000);
        assert_eq!(bytes, 100.0);
        assert_eq!(net.active_count(), 0);
        assert_eq!(net.bytes_of(k), None);
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_rejected() {
        FlowNet::new().add_resource("bad", 0.0);
    }

    #[test]
    fn cancel_mid_flight_reports_remaining_and_frees_capacity() {
        let mut net = FlowNet::new();
        let r = net.add_resource("disk", 100.0);
        let a = net.start(SimTime::ZERO, &[r], 200.0, owner());
        let b = net.start(SimTime::ZERO, &[r], 200.0, owner());
        // After 1s at 50 B/s each, cancel a: 150 bytes unmoved.
        let (_, elapsed, remaining, total) = net.cancel(SimTime::from_secs(1.0), a);
        assert_eq!(elapsed, 1_000_000_000);
        assert_eq!(remaining, 150.0);
        assert_eq!(total, 200.0);
        // b gets the full disk back: 150 left at 100 B/s ⇒ done at 2.5s.
        assert_eq!(net.rate_of(b), Some(100.0));
        let (t, k) = net.next_completion().unwrap();
        assert_eq!((t, k), (SimTime::from_secs(2.5), b));
        assert_eq!(net.active_count(), 1);
    }

    #[test]
    fn disjoint_flow_is_not_rerated() {
        // A start on disjoint resources must leave an unrelated flow's rate
        // and predicted completion untouched (the point of the index).
        let mut net = FlowNet::new();
        let d1 = net.add_resource("disk1", 100.0);
        let d2 = net.add_resource("disk2", 100.0);
        let a = net.start(SimTime::ZERO, &[d1], 100.0, owner());
        let before = net.next_completion().unwrap();
        let b = net.start(SimTime::from_secs(0.25), &[d2], 100.0, owner());
        assert_eq!(net.rate_of(a), Some(100.0));
        assert_eq!(net.rate_of(b), Some(100.0));
        // a is still predicted first, at the original time.
        assert_eq!(net.next_completion().unwrap(), before);
    }

    #[test]
    fn unchanged_rate_keeps_prediction_stable() {
        // b's bottleneck is its private slow disk; sharing the fat pfs link
        // with a new flow does not change b's rate, so b must not be
        // re-rated (rate value identical, group coverage stays valid).
        let mut net = FlowNet::new();
        let pfs = net.add_resource("pfs", 1000.0);
        let slow = net.add_resource("slow", 10.0);
        let b = net.start(SimTime::ZERO, &[pfs, slow], 10.0, owner());
        assert_eq!(net.rate_of(b), Some(10.0));
        let before = net.next_completion().unwrap();
        net.start(SimTime::from_secs(0.5), &[pfs], 500.0, owner());
        assert_eq!(net.rate_of(b), Some(10.0));
        assert_eq!(net.next_completion().unwrap(), before);
    }

    #[test]
    fn stale_heap_entries_are_discarded() {
        // Repeated re-rates leave stale predictions behind; the earliest
        // *valid* one must win.
        let mut net = FlowNet::new();
        let r = net.add_resource("disk", 100.0);
        let a = net.start(SimTime::ZERO, &[r], 100.0, owner());
        // Slow a down: its original 1s prediction is now stale.
        net.set_capacity(SimTime::ZERO, r, 10.0);
        let (t, k) = net.next_completion().unwrap();
        assert_eq!(k, a);
        assert_eq!(t, SimTime::from_secs(10.0));
        // Speed it back up: the 10s prediction goes stale in turn.
        net.set_capacity(SimTime::ZERO, r, 100.0);
        let (t, _) = net.next_completion().unwrap();
        assert_eq!(t, SimTime::from_secs(1.0));
    }

    #[test]
    fn group_refresh_finds_surviving_member() {
        // Two flows re-rated together share one coverage entry whose cached
        // minimum is flow a; completing a must surface b via a group
        // refresh, not lose it.
        let mut net = FlowNet::new();
        let r = net.add_resource("disk", 100.0);
        let a = net.start(SimTime::ZERO, &[r], 50.0, owner());
        let b = net.start(SimTime::ZERO, &[r], 150.0, owner());
        let (t1, k1) = net.next_completion().unwrap();
        assert_eq!(k1, a);
        net.complete(t1, a);
        // b was re-rated by the departure, so it sits in a fresh group; its
        // completion must still be found.
        let (t2, k2) = net.next_completion().unwrap();
        assert_eq!(k2, b);
        assert_eq!(t2, SimTime::from_secs(2.0));
        net.complete(t2, b);
        assert_eq!(net.next_completion(), None);
    }

    #[test]
    fn group_refresh_after_member_migrates() {
        // a and b start together on the shared disk (one group). A later
        // capacity change on a second resource crossing only b migrates b
        // into a new group; the old group's cached minimum may go stale and
        // must refresh to the surviving member.
        let mut net = FlowNet::new();
        let disk = net.add_resource("disk", 100.0);
        let wan = net.add_resource("wan", 1000.0);
        let a = net.start(SimTime::ZERO, &[disk], 100.0, owner());
        let b = net.start(SimTime::ZERO, &[disk, wan], 100.0, owner());
        // Both at 50 B/s; a wins the tie (lower key) at 2s.
        assert_eq!(net.next_completion().unwrap().1, a);
        // Throttle the wan so only b is re-rated (migrates groups).
        net.set_capacity(SimTime::from_secs(1.0), wan, 10.0);
        assert_eq!(net.rate_of(b), Some(10.0));
        // a still completes first at its original prediction.
        let (t, k) = net.next_completion().unwrap();
        assert_eq!((t, k), (SimTime::from_secs(2.0), a));
        net.complete(t, a);
        // b: 50 bytes left at 1s, then 10 B/s ⇒ 6s... after a departs at 2s
        // b is re-rated to min(100, 10) = 10, unchanged value ⇒ no re-rate.
        let (_, k) = net.next_completion().unwrap();
        assert_eq!(k, b);
    }

    #[test]
    fn load_index_consistent_after_churn() {
        let mut net = FlowNet::new();
        let r = net.add_resource("disk", 100.0);
        for i in 0..10 {
            net.start(SimTime::ZERO, &[r], 100.0 + i as f64, owner());
        }
        while let Some((t, k)) = net.next_completion() {
            net.complete(t, k);
        }
        assert_eq!(net.active_count(), 0);
        assert_eq!(net.load[r.0 as usize], 0);
        assert!(net.flows_on[r.0 as usize].is_empty());
        assert_eq!(net.next_completion(), None);
        // All groups emptied back onto the free list.
        assert_eq!(net.groups.len(), net.gfree.len());
    }

    #[test]
    fn snapshot_roundtrip_preserves_completions() {
        let mut net = FlowNet::new();
        let disk = net.add_resource("disk", 100.0);
        let wan = net.add_resource("wan", 25.0);
        net.start(SimTime::ZERO, &[disk], 120.0, owner());
        net.start(SimTime::ZERO, &[disk, wan], 80.0, owner());
        net.start(SimTime::from_secs(0.5), &[wan], 40.0, owner());
        net.set_capacity(SimTime::from_secs(0.75), disk, 60.0);
        let snap = net.snapshot();
        let mut restored = FlowNet::from_snapshot(snap);
        loop {
            let a = net.next_completion();
            let b = restored.next_completion();
            assert_eq!(a, b);
            match a {
                Some((t, k)) => {
                    let x = net.complete(t, k);
                    let y = restored.complete(t, k);
                    assert_eq!(x.1, y.1);
                    assert_eq!(x.2.to_bits(), y.2.to_bits());
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod capacity_tests {
    use super::*;

    #[test]
    fn capacity_change_preserves_progress() {
        let mut net = FlowNet::new();
        let r = net.add_resource("disk", 100.0);
        let k = net.start(SimTime::ZERO, &[r], 200.0, FlowOwner { job: 0, tag: crate::breakdown::FlowTag::LocalRead, background: false });
        // After 1s at 100 B/s, 100 bytes remain; halve the capacity.
        net.set_capacity(SimTime::from_secs(1.0), r, 50.0);
        assert_eq!(net.rate_of(k), Some(50.0));
        let (t, _) = net.next_completion().unwrap();
        // 100 bytes at 50 B/s from t=1s ⇒ completes at 3s.
        assert_eq!(t, SimTime::from_secs(3.0));
    }

    #[test]
    #[should_panic(expected = "capacity must stay positive")]
    fn zero_capacity_change_rejected() {
        let mut net = FlowNet::new();
        let r = net.add_resource("disk", 100.0);
        net.set_capacity(SimTime::ZERO, r, 0.0);
    }
}
