//! Cluster topologies, including the paper's Table 2 machines.

use serde::{Deserialize, Serialize};

use crate::storage::{TierKind, TierSpec};

/// One compute node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    pub cores: u32,
    pub mem_bytes: u64,
}

/// A cluster: homogeneous nodes, available storage tiers, and NIC bandwidth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSpec {
    pub name: String,
    pub nodes: Vec<NodeSpec>,
    pub tiers: Vec<TierSpec>,
    /// Per-node NIC bandwidth, bytes/sec.
    pub nic_bw: f64,
    /// Default tier for files without explicit placement.
    pub default_tier: TierKind,
}

const MB: f64 = 1024.0 * 1024.0;
const GB: u64 = 1 << 30;

impl ClusterSpec {
    /// Table 2 "CPU cluster": 2× Intel SkyLake (24 cores/node as used by the
    /// Belle II study), 192 GB; NFS (default), Lustre, node SSD, RAM-disk.
    pub fn cpu_cluster(n_nodes: usize) -> Self {
        ClusterSpec {
            name: "cpu-cluster".into(),
            nodes: vec![NodeSpec { cores: 24, mem_bytes: 192 * GB }; n_nodes],
            tiers: vec![
                TierSpec::default_for(TierKind::Nfs),
                TierSpec::default_for(TierKind::Lustre),
                TierSpec::default_for(TierKind::Ssd),
                TierSpec::default_for(TierKind::Ramdisk),
            ],
            nic_bw: 1_250.0 * MB, // 10 GbE
            default_tier: TierKind::Nfs,
        }
    }

    /// Table 2 "GPU cluster": 2× AMD EPYC (+RTX 2080 Ti), 384 GB; NFS
    /// (default), BeeGFS, node SSD, RAM-disk.
    pub fn gpu_cluster(n_nodes: usize) -> Self {
        ClusterSpec {
            name: "gpu-cluster".into(),
            nodes: vec![NodeSpec { cores: 32, mem_bytes: 384 * GB }; n_nodes],
            tiers: vec![
                TierSpec::default_for(TierKind::Nfs),
                TierSpec::default_for(TierKind::Beegfs),
                TierSpec::default_for(TierKind::Ssd),
                TierSpec::default_for(TierKind::Ramdisk),
            ],
            nic_bw: 1_250.0 * MB,
            default_tier: TierKind::Nfs,
        }
    }

    /// CPU cluster plus the Table 2 "Data server": remote storage reached
    /// over a 1 Gb/s WAN.
    pub fn cpu_cluster_with_data_server(n_nodes: usize) -> Self {
        let mut c = Self::cpu_cluster(n_nodes);
        c.tiers.push(TierSpec::default_for(TierKind::Wan));
        c.name = "cpu-cluster+data-server".into();
        c
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn total_cores(&self) -> u32 {
        self.nodes.iter().map(|n| n.cores).sum()
    }

    /// The spec of a given tier kind, if present.
    pub fn tier(&self, kind: TierKind) -> Option<&TierSpec> {
        self.tiers.iter().find(|t| t.kind == kind)
    }

    /// Whether this cluster provides `kind`.
    pub fn has_tier(&self, kind: TierKind) -> bool {
        self.tier(kind).is_some()
    }

    /// Adds or replaces a tier.
    pub fn with_tier(mut self, spec: TierSpec) -> Self {
        self.tiers.retain(|t| t.kind != spec.kind);
        self.tiers.push(spec);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_machines() {
        let cpu = ClusterSpec::cpu_cluster(10);
        assert_eq!(cpu.node_count(), 10);
        assert_eq!(cpu.total_cores(), 240, "Belle II runs 240 concurrent tasks");
        assert!(cpu.has_tier(TierKind::Lustre));
        assert!(!cpu.has_tier(TierKind::Beegfs));

        let gpu = ClusterSpec::gpu_cluster(2);
        assert!(gpu.has_tier(TierKind::Beegfs));
        assert!(!gpu.has_tier(TierKind::Lustre));
        assert_eq!(gpu.nodes[0].mem_bytes, 384 * GB);

        let ds = ClusterSpec::cpu_cluster_with_data_server(10);
        assert!(ds.has_tier(TierKind::Wan));
    }

    #[test]
    fn with_tier_replaces() {
        let mut spec = TierSpec::default_for(TierKind::Nfs);
        spec.read_bw = 1.0;
        let c = ClusterSpec::cpu_cluster(1).with_tier(spec);
        assert_eq!(c.tier(TierKind::Nfs).unwrap().read_bw, 1.0);
        assert_eq!(c.tiers.iter().filter(|t| t.kind == TierKind::Nfs).count(), 1);
    }
}
