//! Deterministic fault injection: crash schedules, transient I/O errors,
//! and tier degradation windows.
//!
//! A [`FaultPlan`] is a *schedule-independent* description of what goes
//! wrong during a run. Determinism comes from two properties:
//!
//! * **Timed faults** (node crashes, tier degradations) are ordinary
//!   simulator events pushed at construction time, so they interleave with
//!   flow completions through the same deterministic event loop as
//!   everything else.
//! * **Probabilistic faults** (transient per-operation I/O errors) are
//!   decided by a pure hash of `(seed, job, per-job op index)` rather than
//!   by a stateful RNG. Whether job A's 3rd read fails therefore does not
//!   depend on how its operations interleave with other jobs' — re-orderings
//!   that don't change a job's own op sequence cannot change its faults.
//!
//! The companion [`FailureReport`] aggregates what the faults cost: wasted
//! work in failed attempts, data lost to crashes, and the recovery traffic
//! spent re-creating it (flows tagged [`FlowTag::Recovery`]).
//!
//! [`FlowTag::Recovery`]: crate::breakdown::FlowTag::Recovery

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::storage::{TierKind, TierRef};

/// Capacity multiplier used by [`Degradation::outage`]: the flow network
/// requires strictly positive capacities, so a full outage is modeled as a
/// near-zero share that starves flows without dividing by zero.
pub const OUTAGE_FACTOR: f64 = 1e-6;

/// A node crash: at `at_ns` every job running on `node` fails, all replicas
/// on the node's local tiers are lost, and the node accepts no work until it
/// restarts `down_ns` later (`u64::MAX` keeps it down forever).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeCrash {
    pub node: u32,
    pub at_ns: u64,
    pub down_ns: u64,
}

/// What a [`Degradation`] throttles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DegradeTarget {
    /// A storage tier instance (shared, or node-local via `TierRef::node`).
    Tier(TierRef),
    /// A node's NIC.
    Nic(u32),
}

/// A capacity-degradation window: from `at_ns` for `duration_ns`, the
/// target's bandwidth is `factor ×` its configured capacity, then restored.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Degradation {
    pub target: DegradeTarget,
    pub at_ns: u64,
    pub duration_ns: u64,
    pub factor: f64,
}

impl Degradation {
    /// A full outage window (capacity collapses to [`OUTAGE_FACTOR`]).
    pub fn outage(target: DegradeTarget, at_ns: u64, duration_ns: u64) -> Self {
        Degradation { target, at_ns, duration_ns, factor: OUTAGE_FACTOR }
    }
}

/// A coordinator-level chaos action: unlike node faults (which the engine
/// retries around), chaos kills the *run itself* so the checkpoint/restore
/// path can be exercised deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChaosKind {
    /// Abort the simulation loop just before its `at_event`-th dispatch
    /// (flow completions and heap events both count). Because the dispatch
    /// sequence is deterministic, the same index always kills the run at
    /// the same state, no matter how wall-clock time or pauses interleave.
    CoordinatorCrash { at_event: u64 },
}

/// A seeded, schedule-independent fault schedule for one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision (transient errors, and the
    /// retry jitter derived by the workflow engine).
    pub seed: u64,
    pub crashes: Vec<NodeCrash>,
    pub degradations: Vec<Degradation>,
    /// Probability that any single I/O operation (read, write, stage) fails
    /// with a transient error, decided per `(seed, job, op index)`.
    pub io_error_prob: f64,
    /// Probability that a write silently flips bits in the replica it lands
    /// on (silent data corruption at rest), decided per `(seed, job, op)`
    /// with a write-specific salt so it never correlates with `io_op_fails`.
    pub corrupt_write_prob: f64,
    /// Probability that a read returns flipped bits without the stored
    /// replica being corrupt (in-flight corruption; a retry re-reads clean).
    pub corrupt_read_prob: f64,
    /// Probability that a stage/transfer corrupts the *destination* replica
    /// while the source stays clean — replica divergence.
    pub corrupt_transfer_prob: f64,
    /// Targeted corruption: the first version written to each listed path
    /// is silently corrupted (recovery re-writes bump the version and are
    /// clean), giving tests an exact, schedule-independent injection point.
    pub corrupt_files: Vec<String>,
    /// Coordinator-level chaos (kills the run, not a node). Excluded from
    /// checkpoint snapshots and config hashes so a resumed run compares
    /// byte-identical to the uninterrupted golden run.
    pub chaos: Option<ChaosKind>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: injects nothing and perturbs nothing.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            crashes: Vec::new(),
            degradations: Vec::new(),
            io_error_prob: 0.0,
            corrupt_write_prob: 0.0,
            corrupt_read_prob: 0.0,
            corrupt_transfer_prob: 0.0,
            corrupt_files: Vec::new(),
            chaos: None,
        }
    }

    /// True when the plan can never fire a fault.
    pub fn is_none(&self) -> bool {
        self.crashes.is_empty()
            && self.degradations.is_empty()
            && self.io_error_prob <= 0.0
            && !self.has_corruption()
            && self.chaos.is_none()
    }

    /// True when any silent-corruption kind can fire — used (with the
    /// verify policy) to gate the integrity machinery so corruption-free
    /// runs stay byte-identical to pre-integrity builds.
    pub fn has_corruption(&self) -> bool {
        self.corrupt_write_prob > 0.0
            || self.corrupt_read_prob > 0.0
            || self.corrupt_transfer_prob > 0.0
            || !self.corrupt_files.is_empty()
    }

    pub fn seeded(seed: u64) -> Self {
        FaultPlan { seed, ..FaultPlan::none() }
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds a node crash at `at_ns`; the node restarts after `down_ns`.
    pub fn crash(mut self, node: u32, at_ns: u64, down_ns: u64) -> Self {
        self.crashes.push(NodeCrash { node, at_ns, down_ns });
        self
    }

    pub fn degrade(mut self, d: Degradation) -> Self {
        self.degradations.push(d);
        self
    }

    pub fn io_errors(mut self, prob: f64) -> Self {
        assert!((0.0..1.0).contains(&prob), "io error probability in [0,1)");
        self.io_error_prob = prob;
        self
    }

    /// Silent bit-flips on writes with probability `prob` per write op.
    pub fn corrupt_writes(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "corruption probability in [0,1]");
        self.corrupt_write_prob = prob;
        self
    }

    /// In-flight bit-flips on reads with probability `prob` per read op.
    pub fn corrupt_reads(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "corruption probability in [0,1]");
        self.corrupt_read_prob = prob;
        self
    }

    /// Destination-replica corruption on stages with probability `prob` per
    /// stage op (replica divergence: source stays clean).
    pub fn corrupt_transfers(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "corruption probability in [0,1]");
        self.corrupt_transfer_prob = prob;
        self
    }

    /// Targets `path`: its first written version is silently corrupted.
    pub fn corrupt_file(mut self, path: &str) -> Self {
        self.corrupt_files.push(path.to_owned());
        self
    }

    /// Kills the coordinator just before its `at_event`-th dispatch.
    pub fn chaos_crash(mut self, at_event: u64) -> Self {
        self.chaos = Some(ChaosKind::CoordinatorCrash { at_event });
        self
    }

    /// The same plan with chaos stripped — what checkpoint snapshots and
    /// config hashes embed, so golden and crash-resumed runs agree.
    pub fn without_chaos(&self) -> FaultPlan {
        FaultPlan { chaos: None, ..self.clone() }
    }

    /// Whether `job`'s `op`-th I/O operation suffers a transient error.
    /// Pure function of `(seed, job, op)` — see the module docs.
    pub fn io_op_fails(&self, job: u32, op: u64) -> bool {
        if self.io_error_prob <= 0.0 {
            return false;
        }
        unit_hash(self.seed, u64::from(job), op) < self.io_error_prob
    }

    /// Whether `job`'s `op`-th I/O operation (a write) silently corrupts the
    /// replica it writes. Same pure `(seed, job, op)` scheme as
    /// [`io_op_fails`](Self::io_op_fails) with a kind-specific salt, and the
    /// same op index the error check consumed — corruption plans never
    /// perturb the transient-error stream or the op counting.
    pub fn write_corrupts(&self, job: u32, op: u64) -> bool {
        self.corrupt_write_prob > 0.0
            && unit_hash(self.seed ^ 0x1b17_f11b_0000_c0de, u64::from(job), op)
                < self.corrupt_write_prob
    }

    /// Whether `job`'s `op`-th I/O operation (a read) sees in-flight flipped
    /// bits (the stored replica stays clean).
    pub fn read_corrupts(&self, job: u32, op: u64) -> bool {
        self.corrupt_read_prob > 0.0
            && unit_hash(self.seed ^ 0x2b17_f11b_0000_c0de, u64::from(job), op)
                < self.corrupt_read_prob
    }

    /// Whether `job`'s `op`-th I/O operation (a stage) corrupts the
    /// destination replica in flight (replica divergence).
    pub fn transfer_corrupts(&self, job: u32, op: u64) -> bool {
        self.corrupt_transfer_prob > 0.0
            && unit_hash(self.seed ^ 0x3b17_f11b_0000_c0de, u64::from(job), op)
                < self.corrupt_transfer_prob
    }

    /// Whether `path` is on the targeted-corruption list (its version-1
    /// write is corrupted).
    pub fn corrupts_file(&self, path: &str) -> bool {
        self.corrupt_files.iter().any(|p| p == path)
    }

    /// Parses the CLI mini-syntax: comma-separated `key=value` clauses.
    ///
    /// ```text
    /// seed=42,crash=0@0.5s+1s,ioerr=0.001,degrade=nfs@1s+2s*0.1,degrade=nic:1@0.2s+1s*0.01
    /// ```
    ///
    /// * `seed=N` — the plan seed.
    /// * `crash=NODE@T[+DOWN]` — crash `NODE` at time `T`; restart after
    ///   `DOWN` (default 1s). Times accept an optional trailing `s`.
    /// * `ioerr=P` — transient error probability per I/O operation.
    /// * `degrade=TARGET@T+DUR[*FACTOR]` — throttle `TARGET` (a tier label
    ///   like `nfs`/`beegfs`, `TIER:NODE` for a node-local tier, or
    ///   `nic:NODE`) to `FACTOR ×` capacity (default: outage) for `DUR`.
    /// * `chaos=crash@EVENT` — kill the coordinator just before dispatch
    ///   number `EVENT` (see [`ChaosKind::CoordinatorCrash`]).
    /// * `corrupt=write@P` / `corrupt=read@P` / `corrupt=transfer@P` —
    ///   silent-corruption probability per write / read / stage op.
    /// * `corrupt=file@PATH` — corrupt the first version written to `PATH`.
    ///
    /// [`Display`](fmt::Display) emits the same syntax; `parse(plan.to_string())`
    /// round-trips every plan (asserted by proptest).
    ///
    /// Errors carry the 1-based clause position (`clause N ('text'): …`),
    /// and plans with duplicate or overlapping down-windows for the same
    /// node are rejected instead of silently keeping the last writer.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        // Clause position for each crash, for overlap diagnostics.
        let mut crash_pos: Vec<usize> = Vec::new();
        for (idx, clause) in text
            .split(',')
            .map(str::trim)
            .enumerate()
            .filter(|(_, c)| !c.is_empty())
        {
            let pos = idx + 1;
            Self::parse_clause(clause, &mut plan)
                .map_err(|e| format!("clause {pos} ('{clause}'): {e}"))?;
            crash_pos.resize(plan.crashes.len(), pos);
        }
        // Reject duplicate/overlapping down-windows on the same node: the
        // simulator would otherwise let the later window silently shadow
        // the earlier one while it is already down.
        for j in 1..plan.crashes.len() {
            for i in 0..j {
                let (a, b) = (&plan.crashes[i], &plan.crashes[j]);
                if a.node != b.node {
                    continue;
                }
                let a_end = a.at_ns.saturating_add(a.down_ns);
                let b_end = b.at_ns.saturating_add(b.down_ns);
                if a.at_ns < b_end && b.at_ns < a_end {
                    return Err(format!(
                        "clause {} and clause {}: node {} down-windows overlap \
                         ([{}, {}) ns vs [{}, {}) ns)",
                        crash_pos[i], crash_pos[j], a.node, a.at_ns, a_end, b.at_ns, b_end
                    ));
                }
            }
        }
        Ok(plan)
    }

    fn parse_clause(clause: &str, plan: &mut FaultPlan) -> Result<(), String> {
        let (key, value) = clause
            .split_once('=')
            .ok_or_else(|| "not key=value".to_owned())?;
        match key {
            "seed" => {
                plan.seed = value.parse().map_err(|_| format!("bad seed '{value}'"))?;
            }
            "ioerr" => {
                let p: f64 =
                    value.parse().map_err(|_| format!("bad probability '{value}'"))?;
                if !(0.0..1.0).contains(&p) {
                    return Err(format!("ioerr {p} outside [0,1)"));
                }
                plan.io_error_prob = p;
            }
            "crash" => {
                let (node, rest) = value
                    .split_once('@')
                    .ok_or_else(|| "crash missing '@time'".to_owned())?;
                let node = node.parse().map_err(|_| format!("bad node '{node}'"))?;
                let (at, down) = match rest.split_once('+') {
                    Some((at, down)) => (parse_secs(at)?, parse_secs(down)?),
                    None => (parse_secs(rest)?, 1_000_000_000),
                };
                plan.crashes.push(NodeCrash { node, at_ns: at, down_ns: down });
            }
            "degrade" => {
                let (target, rest) = value
                    .split_once('@')
                    .ok_or_else(|| "degrade missing '@time'".to_owned())?;
                let target = parse_target(target)?;
                let (at, rest) = rest
                    .split_once('+')
                    .ok_or_else(|| "degrade missing '+duration'".to_owned())?;
                let (dur, factor) = match rest.split_once('*') {
                    Some((d, f)) => (
                        parse_secs(d)?,
                        f.parse::<f64>().map_err(|_| format!("bad factor '{f}'"))?,
                    ),
                    None => (parse_secs(rest)?, OUTAGE_FACTOR),
                };
                if !factor.is_finite() || factor <= 0.0 {
                    return Err(format!("degrade factor {factor} must be positive"));
                }
                if dur == 0 {
                    return Err("degrade duration must be positive".to_owned());
                }
                plan.degradations.push(Degradation {
                    target,
                    at_ns: parse_secs(at)?,
                    duration_ns: dur,
                    factor,
                });
            }
            "chaos" => {
                let event = value
                    .strip_prefix("crash@")
                    .ok_or_else(|| format!("chaos '{value}' is not crash@EVENT"))?;
                let at_event =
                    event.parse().map_err(|_| format!("bad event index '{event}'"))?;
                plan.chaos = Some(ChaosKind::CoordinatorCrash { at_event });
            }
            "corrupt" => {
                let (kind, arg) = value
                    .split_once('@')
                    .ok_or_else(|| format!("corrupt '{value}' is not KIND@ARG"))?;
                if kind == "file" {
                    if arg.is_empty() {
                        return Err("corrupt=file@ needs a path".to_owned());
                    }
                    plan.corrupt_files.push(arg.to_owned());
                    return Ok(());
                }
                let p: f64 =
                    arg.parse().map_err(|_| format!("bad probability '{arg}'"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("corruption probability {p} outside [0,1]"));
                }
                match kind {
                    "write" => plan.corrupt_write_prob = p,
                    "read" => plan.corrupt_read_prob = p,
                    "transfer" => plan.corrupt_transfer_prob = p,
                    other => {
                        return Err(format!(
                            "unknown corrupt kind '{other}' (write/read/transfer/file)"
                        ))
                    }
                }
            }
            other => return Err(format!("unknown fault key '{other}'")),
        }
        Ok(())
    }
}

/// Renders a plan back into the [`parse`](FaultPlan::parse) mini-syntax.
/// Times are emitted as exact `{n}ns` integers (not fractional seconds) so
/// `parse(plan.to_string()) == plan` holds for every representable plan.
impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut clauses: Vec<String> = Vec::new();
        if self.seed != 0 {
            clauses.push(format!("seed={}", self.seed));
        }
        for c in &self.crashes {
            clauses.push(format!("crash={}@{}ns+{}ns", c.node, c.at_ns, c.down_ns));
        }
        for d in &self.degradations {
            clauses.push(format!(
                "degrade={}@{}ns+{}ns*{:?}",
                d.target, d.at_ns, d.duration_ns, d.factor
            ));
        }
        if self.io_error_prob > 0.0 {
            clauses.push(format!("ioerr={:?}", self.io_error_prob));
        }
        if self.corrupt_write_prob > 0.0 {
            clauses.push(format!("corrupt=write@{:?}", self.corrupt_write_prob));
        }
        if self.corrupt_read_prob > 0.0 {
            clauses.push(format!("corrupt=read@{:?}", self.corrupt_read_prob));
        }
        if self.corrupt_transfer_prob > 0.0 {
            clauses.push(format!("corrupt=transfer@{:?}", self.corrupt_transfer_prob));
        }
        for path in &self.corrupt_files {
            clauses.push(format!("corrupt=file@{path}"));
        }
        if let Some(ChaosKind::CoordinatorCrash { at_event }) = self.chaos {
            clauses.push(format!("chaos=crash@{at_event}"));
        }
        f.write_str(&clauses.join(","))
    }
}

impl fmt::Display for DegradeTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeTarget::Tier(t) => match t.node {
                Some(n) => write!(f, "{}:{n}", t.kind.label()),
                None => f.write_str(t.kind.label()),
            },
            DegradeTarget::Nic(n) => write!(f, "nic:{n}"),
        }
    }
}

fn parse_secs(text: &str) -> Result<u64, String> {
    // Exact-nanosecond form first ("500000000ns"), used by Display so that
    // u64 times survive the round-trip without passing through f64.
    if let Some(ns) = text.strip_suffix("ns") {
        return ns.parse().map_err(|_| format!("bad time '{text}'"));
    }
    let text = text.strip_suffix('s').unwrap_or(text);
    let secs: f64 = text.parse().map_err(|_| format!("bad time '{text}'"))?;
    if secs.is_nan() || secs < 0.0 {
        return Err(format!("negative time '{text}'"));
    }
    Ok((secs * 1e9).round() as u64)
}

fn parse_target(text: &str) -> Result<DegradeTarget, String> {
    let (label, node) = match text.split_once(':') {
        Some((l, n)) => {
            (l, Some(n.parse::<u32>().map_err(|_| format!("bad node '{n}'"))?))
        }
        None => (text, None),
    };
    if label == "nic" {
        return node
            .map(DegradeTarget::Nic)
            .ok_or_else(|| "nic target needs a node: nic:N".to_owned());
    }
    let kind = TierKind::from_label(label)
        .ok_or_else(|| format!("unknown tier '{label}'"))?;
    Ok(DegradeTarget::Tier(match node {
        Some(n) => TierRef::node(kind, n),
        None => TierRef::shared(kind),
    }))
}

/// Why a job attempt failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureCause {
    /// The node the job was running on crashed.
    NodeCrash { node: u32 },
    /// A transient I/O error hit one of the job's operations.
    IoError { file: String },
    /// The job tried to access a file whose every replica was lost.
    LostFile { file: String },
    /// Verification caught corrupt data in `file`. `root` names the stored
    /// file whose corruption propagated here (the taint root — what lineage
    /// recovery must re-produce); `None` means an in-flight flip with no
    /// persistent root, where a plain retry re-reads clean data.
    CorruptData { file: String, root: Option<String> },
}

impl fmt::Display for FailureCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureCause::NodeCrash { node } => write!(f, "node {node} crashed"),
            FailureCause::IoError { file } => write!(f, "transient I/O error on {file}"),
            FailureCause::LostFile { file } => write!(f, "all replicas of {file} lost"),
            FailureCause::CorruptData { file, root } => {
                write!(f, "corrupt data detected in {file}")?;
                if let Some(root) = root {
                    if root != file {
                        write!(f, " (root {root})")?;
                    }
                }
                Ok(())
            }
        }
    }
}

/// One failed job attempt, surfaced by
/// [`Simulation::run_to_incident`](crate::sim::Simulation::run_to_incident)
/// so a coordination layer can schedule recovery and retries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobFailure {
    pub job: crate::sim::JobId,
    pub name: String,
    pub node: u32,
    pub at_ns: u64,
    pub cause: FailureCause,
}

/// Aggregate cost of faults and recovery over one run.
///
/// Byte counts are logical transfer bytes (flow sizes, including the
/// write-asymmetry inflation the flow model applies); `wasted` covers failed
/// attempts (completed plus in-flight-at-failure transfer), `recovery`
/// covers flows of lineage re-runs and re-staging jobs.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureReport {
    pub crashes: u32,
    pub transient_io_errors: u32,
    /// Job attempts that ended in failure.
    pub failed_attempts: u32,
    /// Retry jobs scheduled (filled by the workflow engine).
    pub retries: u32,
    /// Lineage re-runs plus re-staging jobs (filled by the workflow engine).
    pub recovery_jobs: u32,
    /// Replicas dropped by crashes.
    pub lost_replicas: u32,
    /// Files left with zero surviving replicas.
    pub lost_files: u32,
    pub lost_bytes: u64,
    /// Wall time of failed attempts (start to failure).
    pub wasted_ns: u64,
    /// Bytes transferred by attempts that ended in failure.
    pub wasted_bytes: u64,
    /// Time in flows tagged [`FlowTag::Recovery`](crate::breakdown::FlowTag).
    pub recovery_ns: u64,
    /// Bytes moved by recovery jobs.
    pub recovery_bytes: u64,
    /// All bytes moved by the run (goodput denominator).
    pub total_bytes: u64,
    /// Simulated end time of the run.
    pub final_time_ns: u64,
    /// Silent corruptions injected into stored replicas or in-flight data.
    pub corruptions_injected: u32,
    /// Corruptions caught by verification (on read, transfer, or sample).
    pub corruptions_detected: u32,
    /// File versions quarantined by taint-cone recovery.
    pub quarantined_files: u32,
    /// Bytes of quarantined file versions (the blast radius of late
    /// detection — what "verify late" cost beyond the re-execution itself).
    pub quarantined_bytes: u64,
    /// Bytes whose digests were checked (the "verify early" overhead side).
    pub verified_bytes: u64,
}

impl FailureReport {
    /// Bytes that contributed to the final outputs: total minus wasted and
    /// recovery traffic.
    pub fn goodput_bytes(&self) -> u64 {
        self.total_bytes
            .saturating_sub(self.wasted_bytes)
            .saturating_sub(self.recovery_bytes)
    }

    /// True when no fault fired.
    pub fn is_clean(&self) -> bool {
        self.crashes == 0
            && self.transient_io_errors == 0
            && self.failed_attempts == 0
            && self.corruptions_injected == 0
    }
}

impl fmt::Display for FailureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const MB: f64 = 1024.0 * 1024.0;
        writeln!(f, "failure report")?;
        writeln!(f, "  crashes           {:>8}", self.crashes)?;
        writeln!(f, "  transient errors  {:>8}", self.transient_io_errors)?;
        writeln!(f, "  failed attempts   {:>8}", self.failed_attempts)?;
        writeln!(f, "  retries           {:>8}", self.retries)?;
        writeln!(f, "  recovery jobs     {:>8}", self.recovery_jobs)?;
        writeln!(
            f,
            "  lost              {:>8} files, {} replicas, {:.1} MiB",
            self.lost_files,
            self.lost_replicas,
            self.lost_bytes as f64 / MB
        )?;
        writeln!(
            f,
            "  wasted            {:>8.3} s, {:.1} MiB",
            self.wasted_ns as f64 / 1e9,
            self.wasted_bytes as f64 / MB
        )?;
        writeln!(
            f,
            "  recovery          {:>8.3} s, {:.1} MiB",
            self.recovery_ns as f64 / 1e9,
            self.recovery_bytes as f64 / MB
        )?;
        if self.corruptions_injected > 0 || self.corruptions_detected > 0 {
            writeln!(
                f,
                "  corruption        {:>8} injected, {} detected",
                self.corruptions_injected, self.corruptions_detected
            )?;
        }
        if self.quarantined_files > 0 {
            writeln!(
                f,
                "  quarantined       {:>8} files, {:.1} MiB",
                self.quarantined_files,
                self.quarantined_bytes as f64 / MB
            )?;
        }
        if self.verified_bytes > 0 {
            writeln!(
                f,
                "  verified          {:>8.1} MiB",
                self.verified_bytes as f64 / MB
            )?;
        }
        let total = self.total_bytes.max(1) as f64;
        writeln!(
            f,
            "  goodput           {:>8.1} MiB of {:.1} MiB ({:.1}%)",
            self.goodput_bytes() as f64 / MB,
            self.total_bytes as f64 / MB,
            100.0 * self.goodput_bytes() as f64 / total
        )
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pure hash of `(seed, a, b)` mapped to `[0, 1)` — the building block for
/// schedule-independent probabilistic decisions (transient errors here,
/// retry backoff jitter in the workflow engine).
pub fn unit_hash(seed: u64, a: u64, b: u64) -> f64 {
    let mut s = seed ^ 0x6A09_E667_F3BC_C909;
    let x = splitmix64(&mut s);
    s ^= a.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    let y = splitmix64(&mut s);
    s ^= b.wrapping_mul(0x00CA_5A82_6395) ^ x ^ y;
    (splitmix64(&mut s) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;

    #[test]
    fn none_is_inert() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        for op in 0..1000 {
            assert!(!p.io_op_fails(0, op));
        }
    }

    #[test]
    fn io_op_decision_is_pure_and_seed_dependent() {
        let a = FaultPlan::seeded(7).io_errors(0.5);
        let b = FaultPlan::seeded(8).io_errors(0.5);
        let da: Vec<bool> = (0..64).map(|op| a.io_op_fails(3, op)).collect();
        let da2: Vec<bool> = (0..64).map(|op| a.io_op_fails(3, op)).collect();
        let db: Vec<bool> = (0..64).map(|op| b.io_op_fails(3, op)).collect();
        assert_eq!(da, da2, "pure function of inputs");
        assert_ne!(da, db, "different seeds, different streams");
    }

    #[test]
    fn io_error_rate_tracks_probability() {
        let p = FaultPlan::seeded(42).io_errors(0.1);
        let hits = (0..10_000).filter(|&op| p.io_op_fails(1, op)).count();
        assert!((800..1200).contains(&hits), "≈10%: {hits}");
    }

    #[test]
    fn unit_hash_is_uniformish() {
        let mean: f64 =
            (0..1000).map(|i| unit_hash(9, i, i * 3)).sum::<f64>() / 1000.0;
        assert!((0.45..0.55).contains(&mean), "{mean}");
    }

    #[test]
    fn parse_full_clause() {
        let p = FaultPlan::parse(
            "seed=42,crash=0@0.5s+1s,ioerr=0.001,degrade=nfs@1s+2s*0.1,degrade=nic:1@0.2+1",
        )
        .unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(p.io_error_prob, 0.001);
        assert_eq!(
            p.crashes,
            vec![NodeCrash { node: 0, at_ns: 500_000_000, down_ns: 1_000_000_000 }]
        );
        assert_eq!(p.degradations.len(), 2);
        assert_eq!(
            p.degradations[0].target,
            DegradeTarget::Tier(TierRef::shared(TierKind::Nfs))
        );
        assert_eq!(p.degradations[0].factor, 0.1);
        assert_eq!(p.degradations[1].target, DegradeTarget::Nic(1));
        assert_eq!(p.degradations[1].factor, OUTAGE_FACTOR);
    }

    #[test]
    fn parse_node_local_tier_target() {
        let p = FaultPlan::parse("degrade=ssd:2@0+1").unwrap();
        assert_eq!(
            p.degradations[0].target,
            DegradeTarget::Tier(TierRef::node(TierKind::Ssd, 2))
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("crash=0").is_err());
        assert!(FaultPlan::parse("ioerr=1.5").is_err());
        assert!(FaultPlan::parse("degrade=marble@1+1").is_err());
        assert!(FaultPlan::parse("crash").is_err());
    }

    #[test]
    fn parse_rejects_overlapping_down_windows() {
        let err = FaultPlan::parse("crash=0@1s+2s,crash=0@2s+1s").unwrap_err();
        assert!(err.contains("clause 1") && err.contains("clause 2"), "{err}");
        assert!(err.contains("overlap"), "{err}");
        // Exact duplicates are overlaps too; a forever-down node overlaps
        // any later window on it.
        assert!(FaultPlan::parse("crash=1@1s+1s,crash=1@1s+1s").is_err());
        assert!(FaultPlan::parse("crash=0@1s+1000000s,crash=0@5s+1s").is_err());
        // Same node with disjoint windows, or different nodes, are fine.
        assert!(FaultPlan::parse("crash=0@1s+1s,crash=0@3s+1s").is_ok());
        assert!(FaultPlan::parse("crash=0@1s+1s,crash=1@1s+1s").is_ok());
    }

    #[test]
    fn parse_errors_carry_clause_positions() {
        let err = FaultPlan::parse("seed=7,degrade=nfs@1s").unwrap_err();
        assert!(err.contains("clause 2"), "{err}");
        assert!(err.contains("degrade=nfs@1s"), "{err}");
        let err = FaultPlan::parse("seed=7,ioerr=0.1,degrade=nfs@1+0*0.5").unwrap_err();
        assert!(err.contains("clause 3") && err.contains("duration"), "{err}");
        let err = FaultPlan::parse("degrade=nfs@1+2*nan").unwrap_err();
        assert!(err.contains("clause 1") && err.contains("positive"), "{err}");
    }

    #[test]
    fn parse_chaos_clause() {
        let p = FaultPlan::parse("seed=9,chaos=crash@1234").unwrap();
        assert_eq!(p.chaos, Some(ChaosKind::CoordinatorCrash { at_event: 1234 }));
        assert!(!p.is_none(), "chaos counts as a fault");
        assert!(p.without_chaos().is_none(), "stripping chaos leaves an inert plan");
        assert!(FaultPlan::parse("chaos=boom@1").is_err());
        assert!(FaultPlan::parse("chaos=crash@x").is_err());
    }

    #[test]
    fn report_goodput_math() {
        let r = FailureReport {
            total_bytes: 100,
            wasted_bytes: 30,
            recovery_bytes: 20,
            ..FailureReport::default()
        };
        assert_eq!(r.goodput_bytes(), 50);
        assert!(r.is_clean());
        assert!(r.to_string().contains("goodput"));
    }

    #[test]
    fn parse_corrupt_clauses() {
        let p = FaultPlan::parse(
            "seed=5,corrupt=write@0.1,corrupt=read@0.2,corrupt=transfer@0.3,\
             corrupt=file@out/a.dat",
        )
        .unwrap();
        assert_eq!(p.corrupt_write_prob, 0.1);
        assert_eq!(p.corrupt_read_prob, 0.2);
        assert_eq!(p.corrupt_transfer_prob, 0.3);
        assert_eq!(p.corrupt_files, vec!["out/a.dat".to_owned()]);
        assert!(p.has_corruption());
        assert!(!p.is_none(), "corruption counts as a fault");
        assert!(FaultPlan::parse("corrupt=write@1.5").is_err());
        assert!(FaultPlan::parse("corrupt=bitrot@0.1").is_err());
        assert!(FaultPlan::parse("corrupt=file@").is_err());
        assert!(FaultPlan::parse("corrupt=0.1").is_err());
    }

    #[test]
    fn corruption_decisions_are_pure_and_kind_independent() {
        let p = FaultPlan::seeded(11)
            .io_errors(0.3)
            .corrupt_writes(0.3)
            .corrupt_reads(0.3)
            .corrupt_transfers(0.3);
        let w: Vec<bool> = (0..128).map(|op| p.write_corrupts(2, op)).collect();
        let w2: Vec<bool> = (0..128).map(|op| p.write_corrupts(2, op)).collect();
        assert_eq!(w, w2, "pure function of inputs");
        let r: Vec<bool> = (0..128).map(|op| p.read_corrupts(2, op)).collect();
        let t: Vec<bool> = (0..128).map(|op| p.transfer_corrupts(2, op)).collect();
        let e: Vec<bool> = (0..128).map(|op| p.io_op_fails(2, op)).collect();
        assert_ne!(w, r, "distinct salts per kind");
        assert_ne!(w, t);
        assert_ne!(w, e, "corruption stream never correlates with io errors");
        // And the error stream is untouched by enabling corruption.
        let base = FaultPlan::seeded(11).io_errors(0.3);
        let e2: Vec<bool> = (0..128).map(|op| base.io_op_fails(2, op)).collect();
        assert_eq!(e, e2);
    }

    #[test]
    fn display_round_trips_handwritten_plans() {
        for text in [
            "",
            "seed=42,crash=0@500000000ns+1000000000ns,ioerr=0.001",
            "seed=7,corrupt=write@0.25,corrupt=file@a.dat,chaos=crash@99",
            "degrade=nfs@1000000000ns+2000000000ns*0.1",
            "degrade=nic:1@0ns+1000000000ns*1e-6,corrupt=transfer@1.0",
            "crash=3@1ns+18446744073709551615ns",
        ] {
            let plan = FaultPlan::parse(text).unwrap();
            let shown = plan.to_string();
            let reparsed = FaultPlan::parse(&shown).unwrap();
            assert_eq!(plan, reparsed, "'{text}' -> '{shown}'");
        }
        assert_eq!(FaultPlan::none().to_string(), "");
    }

    fn tier_target(pick: u8, node: u32) -> DegradeTarget {
        let shared = [TierKind::Nfs, TierKind::Beegfs, TierKind::Lustre, TierKind::Wan];
        let local = [TierKind::Ssd, TierKind::Ramdisk];
        match pick % 7 {
            6 => DegradeTarget::Nic(node),
            4 | 5 => {
                DegradeTarget::Tier(TierRef::node(local[usize::from(pick) % 2], node))
            }
            k => DegradeTarget::Tier(TierRef::shared(shared[usize::from(k) % 4])),
        }
    }

    /// Maps a generated parts-per-million count to a probability that
    /// survives `{:?}` → `parse` exactly (f64 Debug output round-trips).
    fn ppm(n: u32) -> f64 {
        f64::from(n) / 1e6
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn display_parse_round_trip(
            seed in any::<u64>(),
            crashes in prop::collection::vec(
                (0u64..1 << 62, 1u64..1 << 62), 0..4),
            degrades in prop::collection::vec(
                (any::<u8>(), 0u32..8, 0u64..1 << 62, 1u64..1 << 62,
                 1u32..1_000_000), 0..4),
            // 0 = kind disabled; ioerr stays < 1.0, corruption may hit 1.0.
            ioerr_ppm in 0u32..1_000_000,
            cw_ppm in 0u32..1_000_001,
            cr_ppm in 0u32..1_000_001,
            ct_ppm in 0u32..1_000_001,
            files in prop::collection::vec((0u32..8, 0u32..100), 0..3),
            chaos in prop_oneof![
                Just(None::<u64>),
                (0u64..1 << 62).prop_map(Some)],
        ) {
            let mut plan = FaultPlan::seeded(seed);
            // Distinct nodes per crash so the overlap check can't reject.
            for (i, (at, down)) in crashes.into_iter().enumerate() {
                plan = plan.crash(i as u32, at, down);
            }
            for (pick, node, at, dur, factor_ppm) in degrades {
                plan = plan.degrade(Degradation {
                    target: tier_target(pick, node),
                    at_ns: at,
                    duration_ns: dur,
                    factor: ppm(factor_ppm),
                });
            }
            plan.io_error_prob = ppm(ioerr_ppm);
            plan.corrupt_write_prob = ppm(cw_ppm);
            plan.corrupt_read_prob = ppm(cr_ppm);
            plan.corrupt_transfer_prob = ppm(ct_ppm);
            plan.corrupt_files =
                files.iter().map(|(d, n)| format!("dir{d}/f{n}.dat")).collect();
            if let Some(at_event) = chaos {
                plan = plan.chaos_crash(at_event);
            }
            let shown = plan.to_string();
            match FaultPlan::parse(&shown) {
                Ok(reparsed) => prop_assert_eq!(&plan, &reparsed, "via '{}'", shown),
                Err(e) => panic!("'{shown}' failed to reparse: {e}"),
            }
        }
    }
}
