//! TAZeR-style multi-level distributed cache (paper §6.4, Table 4).
//!
//! Four levels with widening scope: task-private DRAM (L1), node-wide DRAM
//! (L2), node-wide SSD (L3), and a cluster-wide filesystem cache (L4). Reads
//! check L1→L4 before the origin; misses populate every level on the way
//! back (with per-level LRU eviction), so a task's spatial locality is
//! captured privately while inter-task reuse is captured by the shared
//! levels.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

/// Scope of a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheScope {
    TaskPrivate,
    NodeWide,
    ClusterWide,
}

/// Static description of one level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheLevelSpec {
    pub name: String,
    pub scope: CacheScope,
    /// Capacity per instance, bytes.
    pub capacity: u64,
    /// Serving bandwidth, bytes/sec.
    pub read_bw: f64,
    /// Per-access latency, ns.
    pub latency_ns: u64,
}

/// Cache configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheConfig {
    pub levels: Vec<CacheLevelSpec>,
    /// Cache block size, bytes (power of two).
    pub block: u64,
}

const MB: u64 = 1 << 20;
const GB: u64 = 1 << 30;
const MBF: f64 = (1 << 20) as f64;

impl CacheConfig {
    /// The paper's Table 4: L1 64 MB task-private DRAM, L2 16 GB node DRAM,
    /// L3 200 GB node SSD, L4 512 GB cluster-wide filesystem.
    pub fn tazer_table4() -> Self {
        CacheConfig {
            levels: vec![
                CacheLevelSpec {
                    name: "L1".into(),
                    scope: CacheScope::TaskPrivate,
                    capacity: 64 * MB,
                    read_bw: 20_000.0 * MBF,
                    latency_ns: 500,
                },
                CacheLevelSpec {
                    name: "L2".into(),
                    scope: CacheScope::NodeWide,
                    capacity: 16 * GB,
                    read_bw: 12_000.0 * MBF,
                    latency_ns: 2_000,
                },
                CacheLevelSpec {
                    name: "L3".into(),
                    scope: CacheScope::NodeWide,
                    capacity: 200 * GB,
                    read_bw: 2_000.0 * MBF,
                    latency_ns: 100_000,
                },
                CacheLevelSpec {
                    name: "L4".into(),
                    scope: CacheScope::ClusterWide,
                    capacity: 512 * GB,
                    read_bw: 1_000.0 * MBF,
                    latency_ns: 500_000,
                },
            ],
            block: MB,
        }
    }
}

/// A deterministic LRU set of `(file, block)` keys bounded by capacity.
#[derive(Debug, Default)]
struct Lru {
    capacity_blocks: u64,
    stamps: HashMap<(u32, u64), u64>,
    order: BTreeMap<u64, (u32, u64)>,
    clock: u64,
}

impl Lru {
    fn new(capacity_blocks: u64) -> Self {
        Lru { capacity_blocks, ..Default::default() }
    }

    fn contains(&self, key: (u32, u64)) -> bool {
        self.stamps.contains_key(&key)
    }

    /// Touches (inserts or refreshes) a key; returns the evicted key if the
    /// capacity bound forced one out.
    fn touch(&mut self, key: (u32, u64)) -> Option<(u32, u64)> {
        self.clock += 1;
        if let Some(old) = self.stamps.insert(key, self.clock) {
            self.order.remove(&old);
        }
        self.order.insert(self.clock, key);
        if self.stamps.len() as u64 > self.capacity_blocks {
            let (&oldest, &victim) = self.order.iter().next().expect("nonempty");
            self.order.remove(&oldest);
            self.stamps.remove(&victim);
            return Some(victim);
        }
        None
    }

    fn len(&self) -> usize {
        self.stamps.len()
    }
}

/// Instance key: which copy of a level a (task, node) pair uses.
fn instance_key(scope: CacheScope, task: u32, node: u32) -> u64 {
    match scope {
        CacheScope::TaskPrivate => 0x1_0000_0000 | u64::from(task),
        CacheScope::NodeWide => 0x2_0000_0000 | u64::from(node),
        CacheScope::ClusterWide => 0x3_0000_0000,
    }
}

/// Where the bytes of a read were served from.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessResult {
    /// Bytes served by each level, by level index.
    pub level_bytes: Vec<u64>,
    /// Bytes that missed every level (served by the origin tier).
    pub miss_bytes: u64,
    /// LRU evictions this access forced, by level index.
    pub evictions: Vec<u64>,
}

impl AccessResult {
    pub fn hit_bytes(&self) -> u64 {
        self.level_bytes.iter().sum()
    }
}

/// Runtime cache state.
#[derive(Debug)]
pub struct CacheState {
    config: CacheConfig,
    /// (level index, instance key) → LRU.
    instances: HashMap<(usize, u64), Lru>,
}

impl CacheState {
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.block.is_power_of_two() && config.block > 0);
        Self { config, instances: HashMap::new() }
    }

    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn lru(&mut self, level: usize, task: u32, node: u32) -> &mut Lru {
        let spec = &self.config.levels[level];
        let key = (level, instance_key(spec.scope, task, node));
        let cap = (spec.capacity / self.config.block).max(1);
        self.instances.entry(key).or_insert_with(|| Lru::new(cap))
    }

    /// Performs a cached read of `[offset, offset+len)` of `file` by `task`
    /// on `node`. Returns per-level hit bytes and miss bytes; all touched
    /// blocks are (re)installed in every level.
    pub fn access(&mut self, task: u32, node: u32, file: u32, offset: u64, len: u64) -> AccessResult {
        let nlevels = self.config.levels.len();
        let mut res = AccessResult {
            level_bytes: vec![0; nlevels],
            miss_bytes: 0,
            evictions: vec![0; nlevels],
        };
        if len == 0 {
            return res;
        }
        let block = self.config.block;
        let first = offset / block;
        let last = (offset + len - 1) / block;
        for b in first..=last {
            let blk_start = b * block;
            let span = (offset + len).min(blk_start + block) - offset.max(blk_start);
            let key = (file, b);
            // Find the first level holding the block.
            let mut hit_level = None;
            for lvl in 0..nlevels {
                if self.lru(lvl, task, node).contains(key) {
                    hit_level = Some(lvl);
                    break;
                }
            }
            match hit_level {
                Some(lvl) => res.level_bytes[lvl] += span,
                None => res.miss_bytes += span,
            }
            // Install/refresh in every level (write-through population).
            for lvl in 0..nlevels {
                if self.lru(lvl, task, node).touch(key).is_some() {
                    res.evictions[lvl] += 1;
                }
            }
        }
        res
    }

    /// Number of resident blocks in the instance a (task, node) pair sees at
    /// `level` (diagnostics/tests).
    pub fn resident_blocks(&mut self, level: usize, task: u32, node: u32) -> usize {
        self.lru(level, task, node).len()
    }

    /// Drops every node-wide cache instance on `node` (the node crashed and
    /// its DRAM/SSD cache contents are gone). Task-private instances of the
    /// failed jobs become unreachable (retries run under fresh job ids);
    /// cluster-wide levels live on shared storage and survive.
    pub fn invalidate_node(&mut self, node: u32) {
        let dead = instance_key(CacheScope::NodeWide, 0, node);
        self.instances.retain(|&(_, inst), _| inst != dead);
    }

    /// Serializable state for checkpointing. Only the recency stamps travel:
    /// each LRU's `order` index is the exact inverse of its `stamps` map
    /// (stamps are unique clock values), so restore rebuilds it losslessly.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            config: self.config.clone(),
            instances: self
                .instances
                .iter()
                .map(|(&(level, inst), lru)| {
                    (
                        (level as u64, inst),
                        LruSnapshot {
                            capacity_blocks: lru.capacity_blocks,
                            clock: lru.clock,
                            stamps: lru.stamps.clone(),
                        },
                    )
                })
                .collect(),
        }
    }

    /// Rebuilds runtime cache state from a [`CacheState::snapshot`].
    pub fn from_snapshot(snap: CacheSnapshot) -> Self {
        let instances = snap
            .instances
            .into_iter()
            .map(|((level, inst), lru)| {
                let order = lru.stamps.iter().map(|(&key, &stamp)| (stamp, key)).collect();
                (
                    (level as usize, inst),
                    Lru {
                        capacity_blocks: lru.capacity_blocks,
                        stamps: lru.stamps,
                        order,
                        clock: lru.clock,
                    },
                )
            })
            .collect();
        Self { config: snap.config, instances }
    }
}

/// Checkpointable state of one LRU instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LruSnapshot {
    pub capacity_blocks: u64,
    pub clock: u64,
    /// `(file, block)` → recency stamp (unique clock value).
    pub stamps: HashMap<(u32, u64), u64>,
}

/// Checkpointable state of the whole cache (see [`CacheState::snapshot`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheSnapshot {
    pub config: CacheConfig,
    /// `(level index, instance key)` → LRU state.
    pub instances: HashMap<(u64, u64), LruSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> CacheConfig {
        CacheConfig {
            levels: vec![
                CacheLevelSpec {
                    name: "L1".into(),
                    scope: CacheScope::TaskPrivate,
                    capacity: 4 << 20, // 4 blocks
                    read_bw: 1e9,
                    latency_ns: 1,
                },
                CacheLevelSpec {
                    name: "L2".into(),
                    scope: CacheScope::NodeWide,
                    capacity: 64 << 20,
                    read_bw: 1e8,
                    latency_ns: 10,
                },
            ],
            block: 1 << 20,
        }
    }

    #[test]
    fn cold_read_misses_then_hits() {
        let mut c = CacheState::new(small_config());
        let r1 = c.access(0, 0, 0, 0, 2 << 20);
        assert_eq!(r1.miss_bytes, 2 << 20);
        assert_eq!(r1.hit_bytes(), 0);
        let r2 = c.access(0, 0, 0, 0, 2 << 20);
        assert_eq!(r2.miss_bytes, 0);
        assert_eq!(r2.level_bytes[0], 2 << 20, "second pass hits L1");
    }

    #[test]
    fn task_private_vs_node_wide_scopes() {
        let mut c = CacheState::new(small_config());
        c.access(0, 0, 0, 0, 1 << 20); // task 0 warms both levels
        let r = c.access(1, 0, 0, 0, 1 << 20); // task 1, same node
        assert_eq!(r.level_bytes[0], 0, "L1 is task-private");
        assert_eq!(r.level_bytes[1], 1 << 20, "L2 is node-wide");
    }

    #[test]
    fn different_nodes_do_not_share_node_cache() {
        let mut c = CacheState::new(small_config());
        c.access(0, 0, 0, 0, 1 << 20);
        let r = c.access(1, 1, 0, 0, 1 << 20);
        assert_eq!(r.hit_bytes(), 0);
        assert_eq!(r.miss_bytes, 1 << 20);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut c = CacheState::new(small_config());
        // Touch 6 blocks; L1 holds 4, L2 holds all.
        c.access(0, 0, 0, 0, 6 << 20);
        // Re-read the first block: evicted from L1 (LRU), still in L2.
        let r = c.access(0, 0, 0, 0, 1 << 20);
        assert_eq!(r.level_bytes[0], 0);
        assert_eq!(r.level_bytes[1], 1 << 20);
        assert_eq!(c.resident_blocks(0, 0, 0), 4);
    }

    #[test]
    fn lru_order_is_recency_not_insertion() {
        let mut c = CacheState::new(small_config());
        c.access(0, 0, 0, 0, 4 << 20); // blocks 0..4 fill L1
        c.access(0, 0, 0, 0, 1 << 20); // touch block 0 again
        c.access(0, 0, 0, 4 << 20, 1 << 20); // block 4 evicts block 1 (LRU)
        let r0 = c.access(0, 0, 0, 0, 1 << 20);
        assert_eq!(r0.level_bytes[0], 1 << 20, "block 0 survived");
        let r1 = c.access(0, 0, 0, 1 << 20, 1 << 20);
        assert_eq!(r1.level_bytes[0], 0, "block 1 was the LRU victim");
    }

    #[test]
    fn invalidate_node_clears_its_node_wide_instance_only() {
        let mut c = CacheState::new(small_config());
        c.access(0, 0, 0, 0, 1 << 20); // warm node 0
        c.access(1, 1, 0, 0, 1 << 20); // warm node 1
        c.invalidate_node(0);
        let r0 = c.access(2, 0, 0, 0, 1 << 20);
        assert_eq!(r0.level_bytes[1], 0, "node 0 L2 wiped");
        let r1 = c.access(3, 1, 0, 0, 1 << 20);
        assert_eq!(r1.level_bytes[1], 1 << 20, "node 1 L2 intact");
    }

    #[test]
    fn distinct_files_distinct_blocks() {
        let mut c = CacheState::new(small_config());
        c.access(0, 0, 0, 0, 1 << 20);
        let r = c.access(0, 0, 1, 0, 1 << 20);
        assert_eq!(r.miss_bytes, 1 << 20);
    }

    #[test]
    fn table4_shape() {
        let cfg = CacheConfig::tazer_table4();
        assert_eq!(cfg.levels.len(), 4);
        assert_eq!(cfg.levels[0].scope, CacheScope::TaskPrivate);
        assert_eq!(cfg.levels[0].capacity, 64 << 20);
        assert_eq!(cfg.levels[1].capacity, 16 << 30);
        assert_eq!(cfg.levels[2].capacity, 200 << 30);
        assert_eq!(cfg.levels[3].scope, CacheScope::ClusterWide);
        assert_eq!(cfg.levels[3].capacity, 512 << 30);
    }

    #[test]
    fn snapshot_round_trip_preserves_lru_order() {
        let mut c = CacheState::new(small_config());
        c.access(0, 0, 0, 0, 4 << 20); // fill L1
        c.access(0, 0, 0, 0, 1 << 20); // refresh block 0
        let mut r = CacheState::from_snapshot(c.snapshot());
        // Same next eviction in both: block 1 is the LRU victim.
        assert_eq!(
            c.access(0, 0, 0, 4 << 20, 1 << 20),
            r.access(0, 0, 0, 4 << 20, 1 << 20)
        );
        let (a, b) =
            (c.access(0, 0, 0, 1 << 20, 1 << 20), r.access(0, 0, 0, 1 << 20, 1 << 20));
        assert_eq!(a, b);
        assert_eq!(a.level_bytes[0], 0, "block 1 was evicted in both");
    }

    #[test]
    fn zero_length_access_is_noop() {
        let mut c = CacheState::new(small_config());
        let r = c.access(0, 0, 0, 0, 0);
        assert_eq!(r.hit_bytes() + r.miss_bytes, 0);
    }
}
