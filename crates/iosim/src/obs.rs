//! Glue between the simulator and the [`dfl_obs`] timeline recorder.
//!
//! [`SimObs`] owns the recorder plus the track/handle bookkeeping the
//! simulator needs at its emission sites: one [`TrackKind::Node`] track per
//! compute node (job attempt spans, queue-depth samples), one
//! [`TrackKind::Resource`] track per bandwidth resource in [`FlowNet`]
//! registration order (flow spans, utilization samples, cache instants), an
//! engine-stage track, and a fault track. The whole struct lives behind
//! `Option<Box<_>>` on [`crate::sim::Simulation`], so a disabled run pays
//! one branch per potential emission and allocates nothing.

use std::collections::HashMap;

use dfl_obs::{
    CounterId, Diagnosis, EventStream, HistogramId, InstantKind, ObsConfig, Recorder,
    RecorderState, SpanHandle, SpanKind, SpanMeta, SpanOutcome, Timeline, TrackId, TrackKind,
    Watchdog, WatchdogState,
};
use serde::{Deserialize, Serialize};

use crate::flow::FlowNet;

/// Recorder plus simulator-side bookkeeping (see module docs).
pub struct SimObs {
    pub rec: Recorder,
    node_tracks: Vec<TrackId>,
    /// Indexed by `ResourceId.0` (FlowNet registration order).
    res_tracks: Vec<TrackId>,
    stage_track: TrackId,
    fault_track: TrackId,
    /// Open queued-phase span per job, with queue-entry time.
    queued: HashMap<u32, (SpanHandle, u64)>,
    /// Open run-phase span per job.
    running: HashMap<u32, SpanHandle>,
    /// Open transfer span per flow key, with the serving resource's index
    /// (for the watchdog's per-resource flow accounting).
    flows: HashMap<u64, (SpanHandle, u32)>,
    /// Anomaly detectors fed at the emission sites below; `None` when
    /// [`ObsConfig::watchdogs`] is unset.
    watchdog: Option<Watchdog>,
    /// Sampling cadence in sim-time ns (`None` = spans/instants only).
    pub sample_every: Option<u64>,
    /// Next sim-time at which to take a sample round.
    pub next_sample: u64,
    c_jobs_completed: CounterId,
    c_attempts_failed: CounterId,
    c_flows_completed: CounterId,
    c_flows_cancelled: CounterId,
    c_cache_hit_bytes: CounterId,
    c_cache_miss_bytes: CounterId,
    c_cache_evictions: CounterId,
    c_io_errors: CounterId,
    c_crashes: CounterId,
    c_checkpoint_bytes: CounterId,
    c_checkpoint_stalls: CounterId,
    /// Integrity counters, registered only when the run has verification or
    /// corruption faults configured — a run without either records a metric
    /// table byte-identical to builds predating the integrity machinery.
    c_corruptions_injected: Option<CounterId>,
    c_corruptions_detected: Option<CounterId>,
    c_quarantined_bytes: Option<CounterId>,
    h_flow_ms: HistogramId,
    h_queue_wait_ms: HistogramId,
}

/// Complete dynamic state of a [`SimObs`] for checkpointing. Track ids and
/// metric ids are *not* captured: they are deterministic functions of the
/// cluster/network layout, so restore re-runs [`SimObs::new`] (which
/// reproduces them exactly) and then overlays this state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimObsState {
    pub rec: RecorderState,
    pub queued: HashMap<u32, (u64, u64)>,
    pub running: HashMap<u32, u64>,
    pub flows: HashMap<u64, (u64, u32)>,
    pub next_sample: u64,
    /// Watchdog detector state; present iff watchdogs were configured.
    pub watchdog: Option<WatchdogState>,
}

impl SimObs {
    /// Builds the track layout for a cluster with `node_count` nodes and the
    /// (already fully populated) flow network `net`. Track order is nodes,
    /// then resources in registration order, then stage and fault tracks —
    /// deterministic because both inputs are. `integrity` declares whether
    /// the run can inject or verify corruption: the corruption counters are
    /// registered only then, keeping integrity-free timelines unchanged.
    pub fn new(cfg: &ObsConfig, node_count: usize, net: &FlowNet, integrity: bool) -> Self {
        let mut rec = Recorder::new(cfg.max_events);
        let node_tracks = (0..node_count)
            .map(|n| rec.add_track(format!("node:{n}"), TrackKind::Node))
            .collect();
        let res_tracks = (0..net.resource_count())
            .map(|r| {
                let name = net.resource(crate::flow::ResourceId(r as u32)).name.clone();
                rec.add_track(name, TrackKind::Resource)
            })
            .collect();
        let stage_track = rec.add_track("stages", TrackKind::Stage);
        let fault_track = rec.add_track("faults", TrackKind::Fault);
        let watchdog = cfg.watchdogs.clone().map(|w| {
            let node_names = (0..node_count).map(|n| format!("node:{n}")).collect();
            let res_names = (0..net.resource_count())
                .map(|r| net.resource(crate::flow::ResourceId(r as u32)).name.clone())
                .collect();
            Watchdog::new(w, node_names, res_names)
        });
        let c_jobs_completed = rec.metrics.counter("jobs_completed");
        let c_attempts_failed = rec.metrics.counter("attempts_failed");
        let c_flows_completed = rec.metrics.counter("flows_completed");
        let c_flows_cancelled = rec.metrics.counter("flows_cancelled");
        let c_cache_hit_bytes = rec.metrics.counter("cache_hit_bytes");
        let c_cache_miss_bytes = rec.metrics.counter("cache_miss_bytes");
        let c_cache_evictions = rec.metrics.counter("cache_evictions");
        let c_io_errors = rec.metrics.counter("transient_io_errors");
        let c_crashes = rec.metrics.counter("node_crashes");
        let c_checkpoint_bytes = rec.metrics.counter("checkpoint_bytes");
        let c_checkpoint_stalls = rec.metrics.counter("checkpoint_stalls");
        let c_corruptions_injected =
            integrity.then(|| rec.metrics.counter("corruptions_injected"));
        let c_corruptions_detected =
            integrity.then(|| rec.metrics.counter("corruptions_detected"));
        let c_quarantined_bytes = integrity.then(|| rec.metrics.counter("quarantined_bytes"));
        // Bucket bounds in ms, log-ish steps from sub-ms to minutes.
        const MS_BOUNDS: [f64; 8] = [0.1, 1.0, 10.0, 100.0, 1_000.0, 10_000.0, 60_000.0, 600_000.0];
        let h_flow_ms = rec.metrics.histogram("flow_duration_ms", &MS_BOUNDS);
        let h_queue_wait_ms = rec.metrics.histogram("queue_wait_ms", &MS_BOUNDS);
        SimObs {
            rec,
            node_tracks,
            res_tracks,
            stage_track,
            fault_track,
            queued: HashMap::new(),
            running: HashMap::new(),
            flows: HashMap::new(),
            watchdog,
            sample_every: cfg.sample_every_ns,
            next_sample: cfg.sample_every_ns.unwrap_or(0),
            c_jobs_completed,
            c_attempts_failed,
            c_flows_completed,
            c_flows_cancelled,
            c_cache_hit_bytes,
            c_cache_miss_bytes,
            c_cache_evictions,
            c_io_errors,
            c_crashes,
            c_checkpoint_bytes,
            c_checkpoint_stalls,
            c_corruptions_injected,
            c_corruptions_detected,
            c_quarantined_bytes,
            h_flow_ms,
            h_queue_wait_ms,
        }
    }

    pub fn node_track(&self, node: u32) -> TrackId {
        self.node_tracks[node as usize]
    }

    pub fn res_track(&self, resource: crate::flow::ResourceId) -> TrackId {
        self.res_tracks[resource.0 as usize]
    }

    pub fn stage_track(&self) -> TrackId {
        self.stage_track
    }

    /// A job entered its node's ready queue.
    pub fn job_queued(&mut self, j: u32, node: u32, name: &str, t_ns: u64) {
        let h = self.rec.begin_span(
            self.node_tracks[node as usize],
            t_ns,
            name,
            SpanKind::Queued,
            SpanMeta { job: Some(j), ..SpanMeta::default() },
        );
        self.queued.insert(j, (h, t_ns));
        if let Some(wd) = self.watchdog.as_mut() {
            wd.job_queued(t_ns, &mut self.rec);
        }
    }

    /// A job left the queue and started running; `kind` distinguishes first
    /// attempts, retries, and lineage-recovery re-runs.
    pub fn job_started(&mut self, j: u32, node: u32, name: &str, kind: SpanKind, t_ns: u64) {
        if let Some((q, entered)) = self.queued.remove(&j) {
            self.rec.end_span(q, t_ns, SpanOutcome::Ok);
            self.rec
                .metrics
                .observe(self.h_queue_wait_ms, t_ns.saturating_sub(entered) as f64 / 1e6);
        }
        let h = self.rec.begin_span(
            self.node_tracks[node as usize],
            t_ns,
            name,
            kind,
            SpanMeta { job: Some(j), ..SpanMeta::default() },
        );
        self.running.insert(j, h);
        if let Some(wd) = self.watchdog.as_mut() {
            wd.job_started(t_ns, &mut self.rec);
        }
    }

    pub fn job_completed(&mut self, j: u32, t_ns: u64) {
        if let Some(h) = self.running.remove(&j) {
            self.rec.end_span(h, t_ns, SpanOutcome::Ok);
        }
        self.rec.metrics.inc(self.c_jobs_completed, 1);
        if let Some(wd) = self.watchdog.as_mut() {
            wd.job_finished(t_ns, &mut self.rec);
        }
    }

    pub fn job_failed(&mut self, j: u32, t_ns: u64) {
        if let Some(h) = self.running.remove(&j) {
            self.rec.end_span(h, t_ns, SpanOutcome::Failed);
        }
        self.rec.metrics.inc(self.c_attempts_failed, 1);
        if let Some(wd) = self.watchdog.as_mut() {
            wd.job_finished(t_ns, &mut self.rec);
        }
    }

    /// A transfer entered the flow network. The span lives on the track of
    /// the first path resource (the serving end); `src`/`dst` name the path
    /// endpoints.
    #[allow(clippy::too_many_arguments)]
    pub fn flow_started(
        &mut self,
        key: u64,
        track: TrackId,
        tag: &str,
        job: u32,
        src: String,
        dst: String,
        bytes: u64,
        t_ns: u64,
    ) {
        let h = self.rec.begin_span(
            track,
            t_ns,
            tag,
            SpanKind::Flow,
            SpanMeta {
                job: Some(job),
                tag: Some(tag.to_owned()),
                src: Some(src),
                dst: Some(dst),
                bytes: Some(bytes),
            },
        );
        // The serving resource's FlowNet index: resource tracks follow the
        // node tracks in registration order.
        let res_idx = (track.0 as usize).saturating_sub(self.node_tracks.len()) as u32;
        self.flows.insert(key, (h, res_idx));
        if let Some(wd) = self.watchdog.as_mut() {
            wd.flow_started(res_idx as usize, t_ns, &mut self.rec);
        }
    }

    pub fn flow_completed(&mut self, key: u64, elapsed_ns: u64, t_ns: u64) {
        if let Some((h, res_idx)) = self.flows.remove(&key) {
            self.rec.end_span(h, t_ns, SpanOutcome::Ok);
            if let Some(wd) = self.watchdog.as_mut() {
                wd.flow_ended(res_idx as usize, t_ns, &mut self.rec);
            }
        }
        self.rec.metrics.inc(self.c_flows_completed, 1);
        self.rec.metrics.observe(self.h_flow_ms, elapsed_ns as f64 / 1e6);
    }

    pub fn flow_cancelled(&mut self, key: u64, t_ns: u64) {
        if let Some((h, res_idx)) = self.flows.remove(&key) {
            self.rec.end_span(h, t_ns, SpanOutcome::Cancelled);
            if let Some(wd) = self.watchdog.as_mut() {
                wd.flow_ended(res_idx as usize, t_ns, &mut self.rec);
            }
        }
        self.rec.metrics.inc(self.c_flows_cancelled, 1);
    }

    /// Cache hit on `level_track` serving `bytes`.
    pub fn cache_hit(&mut self, level_track: TrackId, file: &str, bytes: u64, t_ns: u64) {
        self.rec.instant(level_track, t_ns, InstantKind::CacheHit, file, bytes);
        self.rec.metrics.inc(self.c_cache_hit_bytes, bytes);
        if let Some(wd) = self.watchdog.as_mut() {
            wd.cache_lookup(true, t_ns, &mut self.rec);
        }
    }

    /// Full miss served by the origin tier (`origin_track`).
    pub fn cache_miss(&mut self, origin_track: TrackId, file: &str, bytes: u64, t_ns: u64) {
        self.rec.instant(origin_track, t_ns, InstantKind::CacheMiss, file, bytes);
        self.rec.metrics.inc(self.c_cache_miss_bytes, bytes);
        if let Some(wd) = self.watchdog.as_mut() {
            wd.cache_lookup(false, t_ns, &mut self.rec);
        }
    }

    /// `count` LRU evictions at the level backed by `level_track`.
    pub fn cache_evicted(&mut self, level_track: TrackId, count: u64, t_ns: u64) {
        if count == 0 {
            return;
        }
        self.rec.instant(level_track, t_ns, InstantKind::CacheEvict, "evict", count);
        self.rec.metrics.inc(self.c_cache_evictions, count);
        if let Some(wd) = self.watchdog.as_mut() {
            wd.cache_evicted(count.min(u64::from(u32::MAX)) as u32, t_ns, &mut self.rec);
        }
    }

    pub fn node_crashed(&mut self, node: u32, cache_invalidated: bool, t_ns: u64) {
        self.rec.instant(
            self.fault_track,
            t_ns,
            InstantKind::NodeCrash,
            format!("crash node:{node}"),
            u64::from(node),
        );
        if cache_invalidated {
            self.rec.instant(
                self.fault_track,
                t_ns,
                InstantKind::CacheInvalidate,
                format!("cache-invalidate node:{node}"),
                u64::from(node),
            );
        }
        self.rec.metrics.inc(self.c_crashes, 1);
        if let Some(wd) = self.watchdog.as_mut() {
            wd.tick(t_ns, &mut self.rec);
        }
    }

    pub fn node_recovered(&mut self, node: u32, t_ns: u64) {
        self.rec.instant(
            self.fault_track,
            t_ns,
            InstantKind::NodeRecover,
            format!("recover node:{node}"),
            u64::from(node),
        );
        if let Some(wd) = self.watchdog.as_mut() {
            wd.tick(t_ns, &mut self.rec);
        }
    }

    /// A capacity change (fault-plan degradation or injected straggler) took
    /// effect on `track`; `capacity` is the new bytes/sec.
    pub fn capacity_changed(&mut self, track: TrackId, capacity: f64, t_ns: u64) {
        self.rec.instant(
            track,
            t_ns,
            InstantKind::CapacityChange,
            "capacity",
            capacity.round() as u64,
        );
    }

    /// A transient I/O error hit job `j` on `file`.
    pub fn io_error(&mut self, j: u32, file: &str, t_ns: u64) {
        self.rec.instant(
            self.fault_track,
            t_ns,
            InstantKind::IoError,
            file,
            u64::from(j),
        );
        self.rec.metrics.inc(self.c_io_errors, 1);
        if let Some(wd) = self.watchdog.as_mut() {
            wd.tick(t_ns, &mut self.rec);
        }
    }

    /// A silent corruption landed in data job `j` wrote or transferred.
    pub fn corruption_injected(&mut self, j: u32, file: &str, t_ns: u64) {
        self.rec.instant(
            self.fault_track,
            t_ns,
            InstantKind::CorruptionInjected,
            file,
            u64::from(j),
        );
        if let Some(c) = self.c_corruptions_injected {
            self.rec.metrics.inc(c, 1);
        }
    }

    /// Verification caught corrupt data in `file` during job `j`'s I/O.
    pub fn corruption_detected(&mut self, j: u32, file: &str, t_ns: u64) {
        self.rec.instant(
            self.fault_track,
            t_ns,
            InstantKind::CorruptionDetected,
            file,
            u64::from(j),
        );
        if let Some(c) = self.c_corruptions_detected {
            self.rec.metrics.inc(c, 1);
        }
        if let Some(wd) = self.watchdog.as_mut() {
            wd.corruption_detected(t_ns, &mut self.rec);
        }
    }

    /// Taint-cone recovery quarantined every replica of `file`.
    pub fn quarantined(&mut self, file: &str, bytes: u64, t_ns: u64) {
        self.rec.instant(self.fault_track, t_ns, InstantKind::Quarantine, file, bytes);
        if let Some(c) = self.c_quarantined_bytes {
            self.rec.metrics.inc(c, bytes);
        }
        if let Some(wd) = self.watchdog.as_mut() {
            wd.tick(t_ns, &mut self.rec);
        }
    }

    /// A previously quarantined file passed its first verified read after
    /// recovery re-produced it.
    pub fn reverified(&mut self, file: &str, t_ns: u64) {
        self.rec.instant(self.fault_track, t_ns, InstantKind::Reverify, file, 0);
    }

    /// A checkpoint manifest of `bytes` serialized bytes was written at
    /// `t_ns`. Emits a zero-duration [`SpanKind::Checkpoint`] span on the
    /// stage track and bumps the checkpoint counters. Called *before* the
    /// snapshot that lands in the manifest is taken, so the recorded state
    /// already contains its own checkpoint span — crash+resume and
    /// uninterrupted runs then agree byte-for-byte (restores emit nothing).
    pub fn record_checkpoint(&mut self, seq: u64, bytes: u64, t_ns: u64) {
        let h = self.rec.begin_span(
            self.stage_track,
            t_ns,
            format!("checkpoint-{seq}"),
            SpanKind::Checkpoint,
            SpanMeta { bytes: Some(bytes), ..SpanMeta::default() },
        );
        self.rec.end_span(h, t_ns, SpanOutcome::Ok);
        self.rec.metrics.inc(self.c_checkpoint_bytes, bytes);
        self.rec.metrics.inc(self.c_checkpoint_stalls, 1);
    }

    /// Whether anomaly watchdogs are attached.
    pub fn has_watchdog(&self) -> bool {
        self.watchdog.is_some()
    }

    /// One sampling round happened: the latest per-node ready-queue depths,
    /// for the imbalance detector, plus a stall/saturation clock tick.
    pub fn watchdog_sample(&mut self, depths: &[u64], t_ns: u64) {
        if let Some(wd) = self.watchdog.as_mut() {
            wd.queue_depths(depths, t_ns, &mut self.rec);
        }
    }

    /// Attaches a live subscriber to the recorder (see
    /// [`Recorder::subscribe`]).
    pub fn subscribe(&mut self, capacity: usize) -> EventStream {
        self.rec.subscribe(capacity)
    }

    /// Watchdog diagnoses fired so far, in firing order (empty when
    /// watchdogs are disabled).
    pub fn diagnoses(&self) -> &[Diagnosis] {
        self.watchdog.as_ref().map_or(&[], Watchdog::diagnoses)
    }

    /// Captures the dynamic state (see [`SimObsState`]).
    pub fn state(&self) -> SimObsState {
        SimObsState {
            rec: self.rec.state(),
            queued: self.queued.iter().map(|(&j, &(h, t))| (j, (h.0, t))).collect(),
            running: self.running.iter().map(|(&j, &h)| (j, h.0)).collect(),
            flows: self.flows.iter().map(|(&k, &(h, r))| (k, (h.0, r))).collect(),
            next_sample: self.next_sample,
            watchdog: self.watchdog.as_ref().map(Watchdog::state),
        }
    }

    /// Overlays a captured [`SimObsState`] onto a freshly built `SimObs`
    /// (same cluster/network layout, so track and metric ids line up).
    pub fn restore(&mut self, st: SimObsState) {
        self.rec = Recorder::from_state(st.rec);
        self.queued = st.queued.into_iter().map(|(j, (h, t))| (j, (SpanHandle(h), t))).collect();
        self.running = st.running.into_iter().map(|(j, h)| (j, SpanHandle(h))).collect();
        self.flows = st.flows.into_iter().map(|(k, (h, r))| (k, (SpanHandle(h), r))).collect();
        self.next_sample = st.next_sample;
        if let (Some(wd), Some(wst)) = (self.watchdog.as_mut(), st.watchdog) {
            wd.restore(wst);
        }
    }

    /// Finalizes into a [`Timeline`] at `end_ns`.
    pub fn finish(self, end_ns: u64) -> Timeline {
        self.rec.finish(end_ns)
    }
}
