//! Execution time accounting, mirroring the paper's Fig. 8 breakdown
//! (cache levels, network/local/shared reads, writes, staging, code
//! transfer, overhead, compute).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Category a flow (or compute interval) is attributed to.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub enum FlowTag {
    /// Task compute time (not a flow; accounted directly).
    Compute,
    /// TAZeR cache hits by level.
    CacheL1,
    CacheL2,
    CacheL3,
    CacheL4,
    /// Reads from a remote (WAN) origin.
    NetworkRead,
    /// Reads from node-local storage (SSD/RAM-disk).
    LocalRead,
    /// Reads from shared cluster storage (NFS/PFS).
    SharedRead,
    /// Writes to any tier.
    Write,
    /// Explicit staging copies.
    Stage,
    /// Flows run on behalf of failure recovery (lineage re-runs,
    /// re-staging lost inputs).
    Recovery,
    /// Executable/code transfer before task start.
    CodeTransfer,
    /// Metadata operations (open/close).
    Metadata,
}

impl FlowTag {
    pub fn label(self) -> &'static str {
        match self {
            FlowTag::Compute => "compute",
            FlowTag::CacheL1 => "cache L1",
            FlowTag::CacheL2 => "cache L2",
            FlowTag::CacheL3 => "cache L3",
            FlowTag::CacheL4 => "cache L4",
            FlowTag::NetworkRead => "network read",
            FlowTag::LocalRead => "local read",
            FlowTag::SharedRead => "shared read",
            FlowTag::Write => "write",
            FlowTag::Stage => "stage",
            FlowTag::Recovery => "recovery",
            FlowTag::CodeTransfer => "code transfer",
            FlowTag::Metadata => "metadata",
        }
    }

    /// All tags, in report order.
    pub fn all() -> [FlowTag; 13] {
        [
            FlowTag::Compute,
            FlowTag::CacheL1,
            FlowTag::CacheL2,
            FlowTag::CacheL3,
            FlowTag::CacheL4,
            FlowTag::NetworkRead,
            FlowTag::LocalRead,
            FlowTag::SharedRead,
            FlowTag::Write,
            FlowTag::Stage,
            FlowTag::Recovery,
            FlowTag::CodeTransfer,
            FlowTag::Metadata,
        ]
    }
}

/// Accumulated time (ns) per category.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Breakdown {
    by_tag: BTreeMap<FlowTag, u64>,
}

impl Breakdown {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, tag: FlowTag, ns: u64) {
        *self.by_tag.entry(tag).or_insert(0) += ns;
    }

    pub fn get(&self, tag: FlowTag) -> u64 {
        self.by_tag.get(&tag).copied().unwrap_or(0)
    }

    /// Sum over all categories.
    pub fn total(&self) -> u64 {
        self.by_tag.values().sum()
    }

    /// Sum over data-access categories (everything except compute).
    pub fn data_access(&self) -> u64 {
        self.total() - self.get(FlowTag::Compute)
    }

    /// Merges another breakdown in.
    pub fn merge(&mut self, other: &Breakdown) {
        for (&tag, &ns) in &other.by_tag {
            self.add(tag, ns);
        }
    }

    /// Non-zero categories in report order.
    pub fn entries(&self) -> Vec<(FlowTag, u64)> {
        FlowTag::all()
            .into_iter()
            .filter_map(|t| {
                let v = self.get(t);
                (v > 0).then_some((t, v))
            })
            .collect()
    }
}

impl std::fmt::Display for Breakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (tag, ns) in self.entries() {
            writeln!(f, "{:<14} {:>10.3} s", tag.label(), ns as f64 / 1e9)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_totals() {
        let mut b = Breakdown::new();
        b.add(FlowTag::Compute, 100);
        b.add(FlowTag::NetworkRead, 50);
        b.add(FlowTag::NetworkRead, 25);
        assert_eq!(b.get(FlowTag::NetworkRead), 75);
        assert_eq!(b.total(), 175);
        assert_eq!(b.data_access(), 75);
    }

    #[test]
    fn merge_combines() {
        let mut a = Breakdown::new();
        a.add(FlowTag::Write, 10);
        let mut b = Breakdown::new();
        b.add(FlowTag::Write, 5);
        b.add(FlowTag::Stage, 7);
        a.merge(&b);
        assert_eq!(a.get(FlowTag::Write), 15);
        assert_eq!(a.get(FlowTag::Stage), 7);
    }

    #[test]
    fn entries_skip_zero_and_follow_order() {
        let mut b = Breakdown::new();
        b.add(FlowTag::Stage, 1);
        b.add(FlowTag::Compute, 1);
        let e = b.entries();
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].0, FlowTag::Compute, "compute listed first");
    }

    #[test]
    fn display_renders_labels() {
        let mut b = Breakdown::new();
        b.add(FlowTag::CacheL2, 2_000_000_000);
        assert!(b.to_string().contains("cache L2"));
    }
}
