//! Edge cases and less-traveled configuration combinations across crates.

use dfl_core::analysis::cost::CostModel;
use dfl_core::analysis::critical_path::critical_path;
use dfl_core::DflGraph;
use dfl_iosim::breakdown::FlowTag;
use dfl_iosim::cache::CacheConfig;
use dfl_iosim::sim::{Action, CacheOrigins, JobSpec, SimConfig, Simulation};
use dfl_iosim::{ClusterSpec, TierKind, TierRef};
use dfl_workflows::engine::{run, EngineError, RunConfig, Staging};
use dfl_workflows::spec::{FileUse, TaskSpec, WorkflowSpec};

#[test]
fn cache_origins_all_accelerates_shared_rereads() {
    // With CacheOrigins::All, a second read of shared-FS data hits node DRAM.
    let run_with = |origins: CacheOrigins| {
        let mut sim = Simulation::new(
            ClusterSpec::gpu_cluster(1),
            SimConfig {
                cache: Some(CacheConfig::tazer_table4()),
                cache_origins: origins,
                ..SimConfig::with_monitor()
            },
        );
        sim.fs_mut().create_external("x", 256 << 20, TierRef::shared(TierKind::Nfs));
        let a = sim.submit(JobSpec::new("a-0", 0).action(Action::read_file("x")));
        let b = sim.submit(JobSpec::new("b-0", 0).dep(a).action(Action::read_file("x")));
        sim.run().unwrap();
        sim.job_report(b).unwrap().duration_ns()
    };
    let remote_only = run_with(CacheOrigins::RemoteOnly);
    let all = run_with(CacheOrigins::All);
    assert!(all < remote_only / 3, "page-cache effect: {all} vs {remote_only}");
}

#[test]
fn stage_from_origin_forbids_peer_copies() {
    // Two nodes stage the same remote file; with from-origin forced, both
    // copies traverse the WAN (no node-to-node shortcut).
    let staged_bytes = |from_origin: bool| {
        let mut sim = Simulation::new(
            ClusterSpec::cpu_cluster_with_data_server(2),
            SimConfig::with_monitor(),
        );
        sim.fs_mut().create_external("ds", 128 << 20, TierRef::shared(TierKind::Wan));
        let from = from_origin.then_some(TierRef::shared(TierKind::Wan));
        let a = sim.submit(JobSpec::new("s-0", 0).action(Action::Stage {
            file: "ds".into(),
            to: TierRef::node(TierKind::Ssd, 0),
            from,
            tag: FlowTag::Stage,
        }));
        sim.submit(JobSpec::new("s-1", 1).dep(a).action(Action::Stage {
            file: "ds".into(),
            to: TierRef::node(TierKind::Ssd, 1),
            from,
            tag: FlowTag::Stage,
        }));
        sim.run().unwrap();
        sim.time().ns()
    };
    let smart = staged_bytes(false);
    let ftp = staged_bytes(true);
    assert!(ftp > smart, "origin-forced staging is slower: {ftp} vs {smart}");
}

#[test]
fn single_node_single_core_workflow_serializes() {
    let mut w = WorkflowSpec::new("serial");
    w.input("in", 1 << 20);
    for i in 0..3 {
        w.task(
            TaskSpec::new(&format!("t-{i}"), "t", 1)
                .read(FileUse::whole("in"))
                .compute_ms(20),
        );
    }
    let mut cfg = RunConfig::default_gpu(1);
    cfg.cluster.nodes[0].cores = 1;
    let r = run(&w, &cfg).unwrap();
    for pair in r.reports.windows(2) {
        assert!(pair[1].start_ns >= pair[0].end_ns, "1 core ⇒ strictly serial");
    }
}

#[test]
fn zero_compute_workflow_is_pure_io() {
    let mut w = WorkflowSpec::new("io-only");
    w.input("in", 64 << 20);
    w.task(TaskSpec::new("t-0", "t", 1).read(FileUse::whole("in")));
    let r = run(&w, &RunConfig::default_gpu(1)).unwrap();
    assert_eq!(r.total_breakdown.get(FlowTag::Compute), 0);
    assert!(r.makespan_s > 0.0);
}

#[test]
fn staging_tier_missing_from_cluster_is_typed_error() {
    let mut w = WorkflowSpec::new("x");
    w.input("in", 1024);
    w.task(TaskSpec::new("t-0", "t", 1).read(FileUse::whole("in")));
    let mut cfg = RunConfig::default_gpu(1);
    cfg.staging = Staging::staged(TierKind::Beegfs, TierKind::Ramdisk);
    cfg.cluster.tiers.retain(|t| t.kind != TierKind::Ramdisk);
    match run(&w, &cfg) {
        Err(EngineError::InvalidSpec(msg)) => {
            assert!(msg.contains("staging"), "{msg}");
        }
        other => panic!("missing staging tier must be rejected loudly, got {other:?}"),
    }
}

#[test]
fn task_reading_and_writing_same_file_forms_both_edges() {
    // An in-place updater is both producer and consumer of one file.
    let mut sim = Simulation::new(ClusterSpec::gpu_cluster(1), SimConfig::with_monitor());
    sim.fs_mut().create_external("state", 16 << 20, TierRef::shared(TierKind::Beegfs));
    sim.submit(
        JobSpec::new("updater-0", 0)
            .action(Action::Read { file: "state".into(), offset: Some(0), len: 16 << 20 })
            .action(Action::Write { file: "state".into(), len: 4 << 20, tier: None }),
    );
    sim.run().unwrap();
    let g = DflGraph::from_measurements(&sim.measurements().unwrap());
    let d = g.find_vertex("state").unwrap();
    assert_eq!(g.in_degree(d), 1, "producer edge from the updater");
    assert_eq!(g.out_degree(d), 1, "consumer edge to the updater");
    // A read-write task-file pair forms a 2-cycle even in the instance
    // graph (the paper's DAG claim assumes pure producers/consumers); the
    // fallible analysis APIs must report it rather than panic or loop.
    assert!(!g.is_dag());
    assert_eq!(
        dfl_core::analysis::critical_path::try_critical_path(&g, &CostModel::Volume),
        Err(dfl_core::GraphError::CycleDetected)
    );
    let _ = critical_path; // the panicking variant is intentionally unused here
}

#[test]
fn wan_only_cluster_reads_work_without_cache() {
    let mut sim = Simulation::new(
        ClusterSpec::cpu_cluster_with_data_server(1),
        SimConfig::with_monitor(),
    );
    sim.fs_mut().create_external("remote", 32 << 20, TierRef::shared(TierKind::Wan));
    let j = sim.submit(JobSpec::new("r-0", 0).action(Action::read_file("remote")));
    sim.run().unwrap();
    let rep = sim.job_report(j).unwrap();
    assert!(rep.breakdown.get(FlowTag::NetworkRead) > 0);
    // 32 MiB at ~119 MiB/s ≈ 0.27 s + 50 ms latency.
    let dur = rep.duration_ns() as f64 / 1e9;
    assert!(dur > 0.25 && dur < 0.5, "{dur}");
}
