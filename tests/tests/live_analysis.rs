//! Differential tests for the incremental (streaming) DFL analysis engine:
//! folding a run's measurements into [`LiveDfl`] task by task — in *any*
//! arrival order — must reproduce the batch `critical_path` and
//! `caterpillar` results bit for bit, on real workflow specs, on
//! fault/retry runs, and on arbitrary generated DAG runs.
//!
//! Also locks down watchdog determinism: the same seed and fault plan
//! yield a byte-identical serialized `Diagnosis` stream across runs.

use proptest::prelude::*;

use dfl_core::analysis::caterpillar::{caterpillar, CaterpillarRule};
use dfl_core::analysis::{critical_path, CostModel, CriticalPath, LiveDfl};
use dfl_core::DflGraph;
use dfl_iosim::FaultPlan;
use dfl_obs::{ObsConfig, WatchdogConfig};
use dfl_trace::MeasurementSet;
use dfl_workflows::engine::{run, RunConfig, RunResult};
use dfl_workflows::spec::{FileProduce, FileUse, TaskSpec, WorkflowSpec};
use dfl_workflows::watch::{run_watched, WatchOptions};
use dfl_workflows::{ddmd, genomes, seismic};

/// Deterministic Fisher–Yates permutation of `0..n` from an LCG seed, so
/// every fold order the tests exercise is reproducible.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    for i in (1..n).rev() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (s >> 33) as usize % (i + 1);
        idx.swap(i, j);
    }
    idx
}

fn assert_paths_identical(live: &CriticalPath, batch: &CriticalPath, what: &str) {
    assert_eq!(live.vertices, batch.vertices, "{what}: path vertices diverge");
    assert_eq!(live.edges, batch.edges, "{what}: path edges diverge");
    assert_eq!(
        live.total_cost.to_bits(),
        batch.total_cost.to_bits(),
        "{what}: cost not bit-identical"
    );
}

/// Folds `set` into a fresh [`LiveDfl`] with files and tasks delivered in
/// the order given by `order_seed`, then checks the materialized critical
/// path and DFL caterpillar against the batch pipeline bit for bit.
fn assert_live_matches_batch(set: &MeasurementSet, order_seed: u64, what: &str) {
    let g = DflGraph::from_measurements(set);
    let batch_cp = critical_path(&g, &CostModel::Volume);
    let batch_cat = caterpillar(&g, &batch_cp, CaterpillarRule::Dfl);

    let mut live = LiveDfl::new(CostModel::Volume);
    for &i in &permutation(set.files.len(), order_seed) {
        live.fold_file(&set.files[i]);
    }
    for &i in &permutation(set.tasks.len(), order_seed.wrapping_add(1)) {
        let t = &set.tasks[i];
        let recs: Vec<_> = set.records.iter().filter(|r| r.task == t.task).cloned().collect();
        live.fold_task(t, &recs);
    }

    assert_paths_identical(live.critical_path(), &batch_cp, what);
    let live_cat = live.caterpillar(CaterpillarRule::Dfl);
    assert_eq!(live_cat.spine, batch_cat.spine, "{what}: caterpillar spine diverges");
    assert_eq!(live_cat.legs, batch_cat.legs, "{what}: caterpillar legs diverge");
    assert_eq!(live_cat.extended, batch_cat.extended, "{what}: caterpillar extension diverges");
    assert_eq!(live_cat.edges, batch_cat.edges, "{what}: caterpillar edges diverge");
}

#[test]
fn live_matches_batch_on_three_real_workflows() {
    let specs: Vec<(&str, WorkflowSpec)> = vec![
        ("genomes", genomes::generate(&genomes::GenomesConfig::tiny())),
        ("ddmd", ddmd::generate(&ddmd::DdmdConfig::tiny(), ddmd::Pipeline::Original)),
        ("seismic", seismic::generate(&seismic::SeismicConfig::tiny())),
    ];
    for (name, spec) in specs {
        let r = run(&spec, &RunConfig::default_gpu(2)).expect("clean run completes");
        for seed in [0, 7, 1234] {
            assert_live_matches_batch(&r.measurements, seed, name);
        }
    }
}

#[test]
fn live_matches_batch_on_a_faulted_retry_run() {
    let spec = genomes::generate(&genomes::GenomesConfig::tiny());
    let mut cfg = RunConfig::default_gpu(2);
    cfg.faults = FaultPlan::seeded(5).crash(0, 30_000_000, 50_000_000);
    let r = run(&spec, &cfg).expect("run recovers via retries");
    assert!(r.failure.retries >= 1, "the crash must actually cost a retry");
    for seed in [0, 99] {
        assert_live_matches_batch(&r.measurements, seed, "genomes+crash");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary generated DAG runs (random compute, volumes, fan-in,
    /// optional crash + retry) fed to the live engine in an arbitrary
    /// order always reproduce the batch analysis bit for bit.
    #[test]
    fn live_matches_batch_on_generated_dags(
        tasks in prop::collection::vec((1u64..40, 1u64..8, 0usize..3), 2..10),
        order_seed in 0u64..u64::MAX,
        faulted in any::<bool>(),
    ) {
        let mut w = WorkflowSpec::new("gen");
        w.input("f0", 4 << 20);
        for (i, &(compute_ms, out_mb, fanin)) in tasks.iter().enumerate() {
            let mut t = TaskSpec::new(&format!("t-{i}"), "t", (i as u32 % 3) + 1)
                .write(FileProduce::new(&format!("f{}", i + 1), out_mb << 20))
                .compute_ms(compute_ms);
            // Read up to `fanin + 1` of the most recent upstream files
            // (f0 is the external input), forming a random-width DAG.
            for k in 0..=fanin {
                if k > i { break; }
                t = t.read(FileUse::whole(&format!("f{}", i - k)));
            }
            w.task(t);
        }
        let mut cfg = RunConfig::default_gpu(2);
        if faulted {
            cfg.faults = FaultPlan::seeded(order_seed ^ 0x5eed).crash(0, 10_000_000, 20_000_000);
        }
        let r = run(&w, &cfg).expect("short downtime always recovers within default retries");
        assert_live_matches_batch(&r.measurements, order_seed, "generated DAG");
    }
}

/// The crafted stall scenario: both nodes down simultaneously for well
/// past the stall threshold, with jobs runnable — the stall watchdog must
/// fire at least once.
fn stall_run() -> RunResult {
    let spec = genomes::generate(&genomes::GenomesConfig::tiny());
    let mut cfg = RunConfig::default_gpu(2);
    cfg.obs = Some(ObsConfig::sampled(20_000_000).with_watchdogs(WatchdogConfig::default()));
    cfg.faults = FaultPlan::seeded(1)
        .crash(0, 50_000_000, 1_000_000_000)
        .crash(1, 50_000_000, 1_000_000_000);
    run(&spec, &cfg).expect("cluster recovers after the outage")
}

#[test]
fn watchdog_diagnosis_stream_is_byte_identical_across_runs() {
    let a = stall_run();
    let b = stall_run();
    assert!(!a.diagnoses.is_empty(), "a 1 s full outage must trip the stall detector");
    let ja = serde_json::to_string(&a.diagnoses).unwrap();
    let jb = serde_json::to_string(&b.diagnoses).unwrap();
    assert_eq!(ja, jb, "diagnosis stream must be deterministic");
    // The timelines (diagnosis instants included) agree too.
    let ta = serde_json::to_string(a.timeline.as_ref().unwrap()).unwrap();
    let tb = serde_json::to_string(b.timeline.as_ref().unwrap()).unwrap();
    assert_eq!(ta, tb, "timeline with diagnosis track must be deterministic");
}

#[test]
fn watched_stall_scenario_emits_diagnoses_in_window_summaries() {
    let spec = genomes::generate(&genomes::GenomesConfig::tiny());
    let mut cfg = RunConfig::default_gpu(2);
    cfg.obs = Some(ObsConfig::sampled(20_000_000).with_watchdogs(WatchdogConfig::default()));
    cfg.faults = FaultPlan::seeded(1)
        .crash(0, 50_000_000, 1_000_000_000)
        .crash(1, 50_000_000, 1_000_000_000);
    let mut seen = 0usize;
    let r = run_watched(&spec, &cfg, &WatchOptions::default(), |w| seen += w.diagnoses.len())
        .unwrap();
    assert!(seen >= 1, "window summaries must surface the stall diagnosis");
    assert_eq!(seen, r.diagnoses.len(), "summaries partition the diagnosis stream");
}

/// Window summaries carry the integrity ledger (wasted/recovery bytes and
/// quarantined-file counts) through their serialized JSONL schema, and a
/// cone-recovery run surfaces nonzero values in the final window.
#[test]
fn window_summaries_surface_integrity_accounting_in_jsonl() {
    let mut w = WorkflowSpec::new("chain");
    w.input("in.dat", 8 << 20);
    w.task(
        TaskSpec::new("t0", "gen", 1)
            .read(FileUse::whole("in.dat"))
            .write(FileProduce::new("a.dat", 8 << 20))
            .compute_ms(20),
    );
    w.task(
        TaskSpec::new("t1", "xform", 2)
            .read(FileUse::whole("a.dat").ops(1))
            .write(FileProduce::new("b.dat", 8 << 20))
            .compute_ms(20),
    );
    w.task(
        TaskSpec::new("t2", "sink", 3)
            .read(FileUse::whole("b.dat").ops(3))
            .write(FileProduce::new("c.dat", 4 << 20))
            .compute_ms(20),
    );
    let mut cfg = RunConfig::default_gpu(2);
    cfg.verify = dfl_workflows::VerifyPolicy::Sample(3);
    cfg.faults = FaultPlan::seeded(5).corrupt_file("a.dat");
    cfg.retry.max_attempts = 10;

    let mut lines = Vec::new();
    let r = run_watched(&w, &cfg, &WatchOptions::default(), |w| {
        lines.push(serde_json::to_string(w).expect("window summary serializes"));
    })
    .unwrap();
    assert!(r.failure.quarantined_files > 0, "{}", r.failure);

    let summaries: Vec<serde_json::Value> =
        lines.iter().map(|l| serde_json::from_str(l).unwrap()).collect();
    assert!(!summaries.is_empty());
    for s in &summaries {
        for key in ["wasted_bytes", "recovery_bytes", "quarantined_files", "moved_bytes"] {
            assert!(s[key].as_u64().is_some(), "missing or mistyped {key}: {s:?}");
        }
    }
    // The ledger is cumulative: the final window reports the whole run.
    let last = summaries.last().unwrap();
    assert_eq!(last["final_window"], serde_json::Value::Bool(true));
    assert_eq!(last["wasted_bytes"].as_u64().unwrap(), r.failure.wasted_bytes);
    assert_eq!(last["recovery_bytes"].as_u64().unwrap(), r.failure.recovery_bytes);
    assert_eq!(
        last["quarantined_files"].as_u64().unwrap(),
        u64::from(r.failure.quarantined_files)
    );
}
