//! End-to-end data integrity: silent-corruption faults, checksum
//! verification, and taint-cone recovery.
//!
//! Covers the acceptance scenarios: late detection k≥2 hops downstream of
//! the corrupting write with exact-cone quarantine and minimal
//! re-execution, detection during a retry attempt, corruption recovery
//! across a coordinator crash + `resume_latest`, seed-swept determinism
//! (honours `DFL_CORRUPT_SEEDS`, default "1,42,7,20260806" for the CI
//! matrix), silent replica divergence on transfers, and typed
//! unrecoverable corruption of external inputs.

use std::collections::BTreeMap;
use std::path::PathBuf;

use dfl_iosim::{FaultPlan, SimError, TierKind};
use dfl_workflows::checkpoint::CheckpointConfig;
use dfl_workflows::engine::{
    resume_latest, run, EngineError, Placement, RunConfig, RunResult, Staging,
};
use dfl_workflows::spec::{FileProduce, FileUse, TaskSpec, WorkflowSpec};
use dfl_workflows::{taint_cone, VerifyPolicy};

/// in.dat → t0 → a.dat → t1 → b.dat → t2 → c.dat. t1 reads a.dat in a
/// single op (never sampled under `Sample(3)`) while t2 reads b.dat in
/// three, so corruption planted in a.dat is consumed *unverified* by t1
/// (the taint rides into b.dat) and is only caught two hops downstream,
/// by t2's third read.
fn chain() -> WorkflowSpec {
    let mut w = WorkflowSpec::new("chain");
    w.input("in.dat", 8 << 20);
    w.task(
        TaskSpec::new("t0", "gen", 1)
            .read(FileUse::whole("in.dat"))
            .write(FileProduce::new("a.dat", 8 << 20))
            .compute_ms(20),
    );
    w.task(
        TaskSpec::new("t1", "xform", 2)
            .read(FileUse::whole("a.dat").ops(1))
            .write(FileProduce::new("b.dat", 8 << 20))
            .compute_ms(20),
    );
    w.task(
        TaskSpec::new("t2", "sink", 3)
            .read(FileUse::whole("b.dat").ops(3))
            .write(FileProduce::new("c.dat", 4 << 20))
            .compute_ms(20),
    );
    w
}

fn chain_cfg() -> RunConfig {
    let mut cfg = RunConfig::default_gpu(2);
    cfg.shards = dfl_tests::env_shards_for(2);
    cfg.placement = Placement::RoundRobin;
    cfg
}

fn final_sizes(r: &RunResult) -> BTreeMap<String, u64> {
    r.measurements.files.iter().map(|f| (f.path.clone(), f.size)).collect()
}

fn names(r: &RunResult) -> Vec<&str> {
    r.reports.iter().map(|j| j.name.as_str()).collect()
}

/// The tentpole scenario: a silently corrupted intermediate detected two
/// hops downstream quarantines exactly the forward-reachable taint cone and
/// re-executes exactly the minimal producer set.
#[test]
fn late_detection_quarantines_exact_cone_and_reruns_minimal_set() {
    let spec = chain();
    let clean = run(&spec, &chain_cfg()).unwrap();

    // The cone of a.dat is everything downstream: files {a,b,c}.dat and
    // tasks {t1, t2} — in.dat and t0 are upstream and stay untouched.
    let cone = taint_cone(&spec, "a.dat");
    assert_eq!(
        cone.files.iter().map(String::as_str).collect::<Vec<_>>(),
        ["a.dat", "b.dat", "c.dat"]
    );
    assert_eq!(cone.tasks.iter().copied().collect::<Vec<_>>(), [1, 2]);

    let mut cfg = chain_cfg();
    cfg.verify = VerifyPolicy::Sample(3);
    cfg.faults = FaultPlan::seeded(5).corrupt_file("a.dat");
    cfg.retry.max_attempts = 10;
    let r = run(&spec, &cfg).unwrap();

    // One planted corruption, one (late) detection.
    assert_eq!(r.failure.corruptions_injected, 1, "{}", r.failure);
    assert_eq!(r.failure.corruptions_detected, 1, "{}", r.failure);

    // Quarantine is the cone restricted to files that exist at detection
    // time: a.dat and b.dat each hold one 8 MiB shared-FS replica; c.dat
    // was never written (t2 died mid-read).
    assert_eq!(r.failure.quarantined_files, 2, "{}", r.failure);
    assert_eq!(r.failure.quarantined_bytes, 2 * (8 << 20), "{}", r.failure);

    // Minimal re-execution: lineage re-runs exactly the producers of the
    // quarantined chain (t0 for a.dat, t1 for b.dat) and retries only the
    // detector. Nothing upstream of the root is touched.
    let n = names(&r);
    assert_eq!(r.failure.recovery_jobs, 2, "minimal producer set: {n:?}");
    assert!(n.contains(&"t0~rec1"), "{n:?}");
    assert!(n.contains(&"t1~rec1"), "{n:?}");
    assert_eq!(r.failure.retries, 1, "one retry of the detector: {n:?}");
    assert!(n.contains(&"t2~r1"), "{n:?}");
    assert_eq!(n.iter().filter(|x| x.starts_with("t0")).count(), 2, "{n:?}");
    assert_eq!(n.iter().filter(|x| x.starts_with("t1")).count(), 2, "{n:?}");

    // Wasted and recovery traffic are accounted separately from goodput.
    assert!(r.failure.wasted_bytes > 0, "{}", r.failure);
    assert!(r.failure.recovery_bytes > 0, "{}", r.failure);
    assert!(r.failure.goodput_bytes() < r.failure.total_bytes);

    // The repaired run converges to the fault-free outputs, at a cost.
    assert_eq!(final_sizes(&r), final_sizes(&clean));
    assert!(r.makespan_s > clean.makespan_s, "recovery costs time");
}

/// A transient read flip (no stored root) is detected, retried without any
/// cone recovery, and — with a high flip probability — detected *again*
/// during retry attempts before an attempt finally passes verification.
#[test]
fn corruption_detected_during_retry_attempt_converges() {
    let mut w = WorkflowSpec::new("single");
    w.input("in.dat", 4 << 20);
    w.task(
        TaskSpec::new("t0", "t", 1)
            .read(FileUse::whole("in.dat").ops(1))
            .write(FileProduce::new("out.dat", 1 << 20))
            .compute_ms(10),
    );

    let mut cfg = RunConfig::default_gpu(1);
    cfg.verify = VerifyPolicy::OnRead;
    cfg.faults = FaultPlan::seeded(2).corrupt_reads(0.8);
    cfg.retry.max_attempts = 30;
    let r = run(&w, &cfg).unwrap();

    // The first attempt detects, and so does at least one retry attempt.
    assert!(r.failure.failed_attempts >= 2, "{}", r.failure);
    assert_eq!(r.failure.corruptions_detected, r.failure.failed_attempts);
    assert_eq!(r.failure.retries, r.failure.failed_attempts);
    let n = names(&r);
    assert!(n.contains(&"t0~r1") && n.contains(&"t0~r2"), "{n:?}");

    // Transient flips have no root: plain retries, no lineage recovery.
    assert_eq!(r.failure.recovery_jobs, 0, "{}", r.failure);
    assert_eq!(r.failure.quarantined_files, 0, "{}", r.failure);

    let mut clean_cfg = RunConfig::default_gpu(1);
    clean_cfg.verify = VerifyPolicy::OnRead;
    let clean = run(&w, &clean_cfg).unwrap();
    assert_eq!(final_sizes(&r), final_sizes(&clean));
}

/// Everything a consumer can observe about a finished run, with the
/// timeline compared through both export formats' literal bytes.
type Outcome = (String, Vec<(String, u64, u64, bool)>, String, String, String);

fn outcome(r: &RunResult) -> Outcome {
    let tl = r.timeline.as_ref().expect("obs enabled");
    (
        format!("{:.9}/{:?}", r.makespan_s, r.stage_spans),
        r.reports.iter().map(|j| (j.name.clone(), j.start_ns, j.end_ns, j.failed)).collect(),
        format!("{:?}", r.failure),
        dfl_obs::chrome_trace(tl),
        dfl_obs::jsonl(tl),
    )
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dfl-corrupt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Corruption of a checkpointed file across a coordinator crash: killing
/// the engine mid-run (including mid-recovery) and resuming from the
/// latest manifest converges to the golden outcome byte-for-byte.
#[test]
fn corruption_recovery_survives_crash_and_resume() {
    let spec = chain();
    let cfg_for = |dir: &PathBuf| {
        let mut cfg = chain_cfg();
        cfg.verify = VerifyPolicy::Sample(3);
        cfg.faults = FaultPlan::seeded(5).corrupt_file("a.dat");
        cfg.retry.max_attempts = 10;
        cfg.obs = Some(dfl_obs::ObsConfig::sampled(20_000_000));
        cfg.checkpoint = Some(
            CheckpointConfig::to_dir(dir).every_sim_ns(30_000_000).every_stages(1).on_incident(),
        );
        cfg
    };

    let golden_dir = fresh_dir("golden");
    let golden = run(&spec, &cfg_for(&golden_dir)).expect("golden run completes");
    let golden_out = outcome(&golden);
    assert_eq!(golden.failure.corruptions_detected, 1, "{}", golden.failure);

    // Kill at three points spread across the dispatch range — before,
    // around, and after the detection/recovery window.
    let total = golden.events_dispatched;
    assert!(total > 8, "golden run too short: {total}");
    for (i, point) in [total / 4, total / 2, 3 * total / 4].into_iter().enumerate() {
        let dir = fresh_dir(&format!("kill{i}"));
        let cfg = cfg_for(&dir);
        let mut armed = cfg.clone();
        armed.faults = armed.faults.chaos_crash(point);
        match run(&spec, &armed) {
            Err(e) => {
                let msg = e.to_string();
                assert!(msg.contains("chaos"), "kill {i}: only the planned kill fails: {msg}");
                let r = resume_latest(&spec, &cfg).expect("resume completes");
                assert_eq!(outcome(&r), golden_out, "kill {i} at event {point} diverges");
            }
            // The kill landed after completion-relevant events; the run
            // finishing unharmed must still match golden exactly.
            Ok(r) => assert_eq!(outcome(&r), golden_out, "kill {i} at event {point}"),
        }
    }
}

/// One corruption-heavy scenario, run with a given seed: persistent write
/// flips (cone recovery) plus transient read flips (plain retries) under
/// sampled verification.
fn corrupt_run(seed: u64) -> RunResult {
    let mut cfg = chain_cfg();
    cfg.verify = VerifyPolicy::Sample(2);
    cfg.obs = Some(dfl_obs::ObsConfig::sampled(20_000_000));
    cfg.faults = FaultPlan::seeded(seed).corrupt_writes(0.25).corrupt_reads(0.05);
    cfg.retry.max_attempts = 30;
    run(&chain(), &cfg).expect("recoverable corruption scenario")
}

/// CI sweeps this via `DFL_CORRUPT_SEEDS=<seed>`; locally it covers the
/// default matrix. Same seed + same plan ⇒ bit-identical failure report
/// and timeline exports, and the run still converges to fault-free
/// outputs.
#[test]
fn corruption_suite_is_deterministic_across_seeds() {
    let clean = run(&chain(), &chain_cfg()).unwrap();
    for seed in dfl_tests::seed_matrix("DFL_CORRUPT_SEEDS", "1,42,7,20260806") {
        let a = corrupt_run(seed);
        let b = corrupt_run(seed);
        assert_eq!(a.failure, b.failure, "seed {seed}");
        assert_eq!(outcome(&a), outcome(&b), "seed {seed}: timelines diverge");
        assert_eq!(final_sizes(&a), final_sizes(&clean), "seed {seed}");
    }
}

/// Replica divergence without verification: a transfer flips in flight,
/// the destination replica lands corrupt while the source stays clean, and
/// nothing notices — the run is bit-identical in timing to a fault-free
/// one, only the integrity ledger differs.
#[test]
fn unverified_transfer_divergence_is_silent_and_timing_invisible() {
    let spec = chain();
    let staged = |faults: FaultPlan| {
        let mut cfg = chain_cfg();
        cfg.staging = Staging::staged(TierKind::Beegfs, TierKind::Ramdisk);
        cfg.faults = faults;
        run(&spec, &cfg).unwrap()
    };
    let clean = staged(FaultPlan::none());
    let r = staged(FaultPlan::seeded(9).corrupt_transfers(1.0));

    assert!(r.failure.corruptions_injected >= 1, "{}", r.failure);
    assert_eq!(r.failure.corruptions_detected, 0, "silent: {}", r.failure);
    assert!(!r.failure.is_clean());
    assert_eq!(r.makespan_s, clean.makespan_s, "silent corruption must not perturb timing");
    assert_eq!(
        r.measurements.to_json().unwrap(),
        clean.measurements.to_json().unwrap(),
        "silent corruption must not perturb the measured schedule"
    );
    assert_eq!(final_sizes(&r), final_sizes(&clean));
}

/// The same divergence under `OnRead` is caught at the first consumer —
/// and since the corrupt file is an external input with no producer to
/// re-run, the engine surfaces a typed, unrecoverable integrity error.
#[test]
fn corrupt_external_input_surfaces_integrity_violation() {
    let mut cfg = chain_cfg();
    cfg.staging = Staging::staged(TierKind::Beegfs, TierKind::Ramdisk);
    cfg.verify = VerifyPolicy::OnRead;
    cfg.faults = FaultPlan::seeded(9).corrupt_transfers(1.0);
    cfg.retry.max_attempts = 10;
    match run(&chain(), &cfg) {
        Err(EngineError::Sim(SimError::IntegrityViolation { file })) => {
            assert_eq!(file, "in.dat", "the root is the unreproducible input");
        }
        other => panic!("expected IntegrityViolation for an external input, got {other:?}"),
    }
}

/// Verification on a clean run: every read pays its checksum pass (more
/// simulated time, verified bytes accounted), the ledger stays clean, and
/// outputs are unchanged.
#[test]
fn clean_verified_run_pays_checksum_latency_and_stays_clean() {
    let spec = chain();
    let off = run(&spec, &chain_cfg()).unwrap();
    let mut cfg = chain_cfg();
    cfg.verify = VerifyPolicy::OnRead;
    let on = run(&spec, &cfg).unwrap();

    assert!(off.failure.is_clean() && on.failure.is_clean());
    assert_eq!(off.failure.verified_bytes, 0);
    assert!(on.failure.verified_bytes > 0, "{}", on.failure);
    assert!(on.makespan_s > off.makespan_s, "verification costs simulated time");
    assert_eq!(final_sizes(&off), final_sizes(&on));
}

/// A diamond where detection races a sibling consumer: t2's sampled read
/// catches the corrupt a.dat while t1 (also in the cone) is still
/// running, so handling the incident quarantines t1 and raises a *fresh*
/// failure mid-recovery. An `on_incident` checkpoint must defer to the
/// follow-up incident rather than snapshot with undelivered failures
/// (regression: `datalife chaos` over a corruption plan died with
/// "snapshot restore failed: N unreported failures pending").
#[test]
fn on_incident_checkpoint_defers_while_quarantine_failures_pending() {
    let mut w = WorkflowSpec::new("diamond");
    w.input("in.dat", 8 << 20);
    w.task(
        TaskSpec::new("t0", "gen", 1)
            .read(FileUse::whole("in.dat"))
            .write(FileProduce::new("a.dat", 8 << 20))
            .compute_ms(20),
    );
    // Long compute: still running when its sibling detects.
    w.task(
        TaskSpec::new("t1", "slow", 2)
            .read(FileUse::whole("a.dat").ops(1))
            .write(FileProduce::new("b.dat", 8 << 20))
            .compute_ms(200),
    );
    w.task(
        TaskSpec::new("t2", "detect", 2)
            .read(FileUse::whole("a.dat").ops(3))
            .write(FileProduce::new("c.dat", 4 << 20))
            .compute_ms(20),
    );

    let cfg_for = |dir: &PathBuf| {
        let mut cfg = chain_cfg();
        cfg.verify = VerifyPolicy::Sample(3);
        cfg.faults = FaultPlan::seeded(5).corrupt_file("a.dat");
        cfg.retry.max_attempts = 10;
        cfg.obs = Some(dfl_obs::ObsConfig::sampled(20_000_000));
        cfg.checkpoint = Some(CheckpointConfig::to_dir(dir).on_incident());
        cfg
    };

    let golden_dir = fresh_dir("diamond-golden");
    let golden = run(&w, &cfg_for(&golden_dir)).expect("on_incident checkpointing completes");
    assert!(golden.failure.corruptions_detected >= 1, "{}", golden.failure);
    // Both the detector's failed attempt and the quarantined sibling are
    // counted — the scenario really did raise a failure mid-recovery.
    assert!(golden.failure.failed_attempts >= 2, "{}", golden.failure);
    let n = names(&golden);
    assert!(n.contains(&"t1~r1") && n.contains(&"t2~r1"), "{n:?}");

    // The deferred checkpoints are still valid resume points: kill around
    // the incident window and resume to the golden outcome.
    let golden_out = outcome(&golden);
    let total = golden.events_dispatched;
    for (i, point) in [total / 2, 2 * total / 3].into_iter().enumerate() {
        let dir = fresh_dir(&format!("diamond-kill{i}"));
        let cfg = cfg_for(&dir);
        let mut armed = cfg.clone();
        armed.faults = armed.faults.chaos_crash(point);
        match run(&w, &armed) {
            Err(e) => {
                let msg = e.to_string();
                assert!(msg.contains("chaos"), "kill {i}: only the planned kill fails: {msg}");
                let r = resume_latest(&w, &cfg).expect("resume completes");
                assert_eq!(outcome(&r), golden_out, "kill {i} at event {point} diverges");
            }
            Ok(r) => assert_eq!(outcome(&r), golden_out, "kill {i} at event {point}"),
        }
    }
}
