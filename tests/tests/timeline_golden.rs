//! Golden-trace snapshots: the exported timeline of a tiny three-job
//! workflow is locked down byte-for-byte, fault-free and with one crash.
//!
//! Any intentional change to the event model, ID assignment, or exporter
//! formatting shows up as a diff against `tests/fixtures/`. Regenerate with
//!
//! ```text
//! DFL_UPDATE_GOLDEN=1 cargo test -p dfl-tests --test timeline_golden
//! ```
//!
//! and review the fixture diff like any other code change.

use std::path::PathBuf;

use dfl_iosim::FaultPlan;
use dfl_obs::{ascii_summary, chrome_trace, jsonl, ObsConfig};
use dfl_workflows::engine::{run, RunConfig, RunResult};
use dfl_workflows::spec::{FileProduce, FileUse, TaskSpec, WorkflowSpec};

/// Three jobs in a chain across two stages: gen writes mid.dat, proc turns
/// it into out.dat, sum reads the result. Small enough that the fixture
/// stays reviewable, rich enough to exercise queued/run/flow/stage spans.
fn three_jobs() -> WorkflowSpec {
    let mut w = WorkflowSpec::new("golden");
    w.input("in.dat", 8 << 20);
    w.task(
        TaskSpec::new("gen-0", "gen", 1)
            .read(FileUse::whole("in.dat"))
            .write(FileProduce::new("mid.dat", 4 << 20))
            .compute_ms(50),
    );
    w.task(
        TaskSpec::new("proc-0", "proc", 2)
            .read(FileUse::whole("mid.dat"))
            .write(FileProduce::new("out.dat", 2 << 20))
            .compute_ms(30),
    );
    w.task(
        TaskSpec::new("sum-0", "sum", 2)
            .read(FileUse::whole("out.dat"))
            .compute_ms(10),
    );
    w
}

fn golden_run(faults: FaultPlan) -> RunResult {
    let mut cfg = RunConfig::default_gpu(2);
    cfg.obs = Some(ObsConfig::sampled(20_000_000)); // 20 ms cadence
    cfg.faults = faults;
    run(&three_jobs(), &cfg).expect("golden scenario completes")
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name)
}

/// Compares `actual` against the named fixture; `DFL_UPDATE_GOLDEN=1`
/// rewrites the fixture instead.
fn check_golden(name: &str, actual: &str) {
    let path = fixture_path(name);
    if std::env::var_os("DFL_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("cannot read fixture {name} ({e}); run with DFL_UPDATE_GOLDEN=1 to create it")
    });
    if actual != expected {
        let (a_lines, e_lines): (Vec<_>, Vec<_>) =
            (actual.lines().collect(), expected.lines().collect());
        for (i, (a, e)) in a_lines.iter().zip(&e_lines).enumerate() {
            assert_eq!(
                a,
                e,
                "fixture {name} differs first at line {} (regenerate with DFL_UPDATE_GOLDEN=1 \
                 and review the diff)",
                i + 1
            );
        }
        panic!(
            "fixture {name} line count changed: {} actual vs {} expected (regenerate with \
             DFL_UPDATE_GOLDEN=1 and review the diff)",
            a_lines.len(),
            e_lines.len()
        );
    }
}

#[test]
fn clean_run_matches_golden_chrome_trace() {
    let r = golden_run(FaultPlan::none());
    let tl = r.timeline.as_ref().unwrap();
    check_golden("timeline_clean.chrome.json", &chrome_trace(tl));
    check_golden("timeline_clean.jsonl", &jsonl(tl));
    check_golden("timeline_clean.summary.txt", &ascii_summary(tl));
}

#[test]
fn one_crash_run_matches_golden_chrome_trace() {
    // Node 0 dies while gen-0 computes; mid.dat isn't written yet, so the
    // retry replays the whole task. The timeline must capture the failed
    // attempt, the crash/recover instants, and the retry span.
    let r = golden_run(FaultPlan::seeded(7).crash(0, 30_000_000, 50_000_000));
    assert_eq!(r.failure.crashes, 1);
    assert!(r.failure.retries >= 1);
    let tl = r.timeline.as_ref().unwrap();
    assert!(tl.spans().any(|s| s.outcome == dfl_obs::SpanOutcome::Failed));
    assert!(tl.instants().any(|i| i.kind == dfl_obs::InstantKind::NodeCrash));
    check_golden("timeline_crash.chrome.json", &chrome_trace(tl));
}

/// Enabling watchdogs must not perturb the recorded timeline at all while
/// no detector fires: the diagnosis track is created lazily on the first
/// firing, so a silent run exports byte-identically to the same run with
/// watchdogs off — which is exactly what the existing fixtures lock down.
#[test]
fn watchdogs_enabled_leave_golden_fixtures_unchanged() {
    let plans = [
        (FaultPlan::none(), false),
        (FaultPlan::seeded(7).crash(0, 30_000_000, 50_000_000), true),
    ];
    for (faults, crashy) in plans {
        let mut cfg = RunConfig::default_gpu(2);
        cfg.obs = Some(
            ObsConfig::sampled(20_000_000).with_watchdogs(dfl_obs::WatchdogConfig::default()),
        );
        cfg.faults = faults;
        let r = run(&three_jobs(), &cfg).expect("golden scenario completes");
        assert!(
            r.diagnoses.is_empty(),
            "golden scenarios are anomaly-free (50 ms downtime < stall threshold)"
        );
        let tl = r.timeline.as_ref().unwrap();
        let name = if crashy { "timeline_crash.chrome.json" } else { "timeline_clean.chrome.json" };
        let expected = std::fs::read_to_string(fixture_path(name)).unwrap();
        assert_eq!(chrome_trace(tl), expected, "{name} perturbed by enabling watchdogs");
        if !crashy {
            let ex = std::fs::read_to_string(fixture_path("timeline_clean.jsonl")).unwrap();
            assert_eq!(jsonl(tl), ex, "jsonl perturbed by enabling watchdogs");
            let ex = std::fs::read_to_string(fixture_path("timeline_clean.summary.txt")).unwrap();
            assert_eq!(ascii_summary(tl), ex, "summary perturbed by enabling watchdogs");
        }
    }
}

/// The fixtures aren't just stable strings: re-parse the chrome trace and
/// make sure what we lock down is structurally valid.
#[test]
fn golden_chrome_trace_parses() {
    let r = golden_run(FaultPlan::none());
    let text = chrome_trace(r.timeline.as_ref().unwrap());
    let v = serde_json::from_str::<serde_json::Value>(&text).expect("valid JSON");
    let events = v["traceEvents"].as_array().unwrap();
    assert!(events.len() > 10);
    assert!(events.iter().all(|e| e["ph"].as_str().is_some()));
}
