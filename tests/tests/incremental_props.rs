//! Differential properties for the incremental GCPA engine under *edit
//! sequences*: starting from a generated DAG, every interleaving of edge
//! inserts (including backward inserts that force a Pearce–Kelly order
//! repair), edge unlinks, and task-weight updates must leave the engine's
//! critical path bit-identical to a batch DP sweep over the same graph.
//!
//! Also holds the 100k-vertex scale smoke test: the flat arena layout and
//! the incremental engine must both handle a large layered DAG in debug
//! builds without blowing the time budget.

use proptest::prelude::*;

use dfl_core::analysis::critical_path::critical_path;
use dfl_core::analysis::{CostModel, IncrementalGcpa};
use dfl_core::graph::{Vertex, VertexKind, VertexProps};
use dfl_core::props::{DataProps, EdgeProps, FlowDir, TaskProps};

fn task(name: &str, life: u64) -> Vertex {
    Vertex {
        kind: VertexKind::Task,
        name: name.into(),
        logical: name.into(),
        props: VertexProps::Task(TaskProps { lifetime_ns: life, ..Default::default() }),
    }
}

fn data(name: &str) -> Vertex {
    Vertex {
        kind: VertexKind::Data,
        name: name.into(),
        logical: name.into(),
        props: VertexProps::Data(DataProps::default()),
    }
}

fn vol(volume: u64) -> EdgeProps {
    EdgeProps { volume, ..Default::default() }
}

/// Engine vs batch over the engine's own graph. Keys are engine ids here,
/// so the canonical order and the engine order coincide and the comparison
/// covers vertices, edges, and the exact cost bits.
fn assert_matches_batch(eng: &mut IncrementalGcpa, what: &str) {
    let model = eng.model();
    let batch = critical_path(eng.graph(), &model);
    let inc = eng.critical_path();
    assert_eq!(inc.vertices, batch.vertices, "{what}: path vertices diverge");
    assert_eq!(inc.edges, batch.edges, "{what}: path edges diverge");
    assert_eq!(
        inc.total_cost.to_bits(),
        batch.total_cost.to_bits(),
        "{what}: cost not bit-identical ({} vs {})",
        inc.total_cost,
        batch.total_cost
    );
}

/// Deterministic Fisher–Yates permutation of `0..n` from an LCG seed.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    for i in (1..n).rev() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (s >> 33) as usize % (i + 1);
        idx.swap(i, j);
    }
    idx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random edit sequences on a permutation-ordered DAG. Acyclicity is
    /// guaranteed by only inserting edges that run forward through a hidden
    /// logical order (`perm`), while the engine sees them in *allocation*
    /// order — so a large fraction of inserts run backward through the
    /// maintained topological order and exercise the Pearce–Kelly repair.
    #[test]
    fn edit_sequences_match_batch_bit_for_bit(
        n in 4usize..14,
        perm_seed in 0u64..u64::MAX,
        ops in prop::collection::vec((0u8..4, 0u64..u64::MAX, 1u64..1000), 1..40),
    ) {
        let mut eng = IncrementalGcpa::new(CostModel::Volume);
        // Alternating task/data vertices; `perm` is the hidden logical
        // order used to keep inserts acyclic.
        let verts: Vec<_> = (0..n)
            .map(|i| {
                let key = i as u64;
                if i % 2 == 0 {
                    eng.add_vertex(task(&format!("t{i}"), (i as u64 + 1) * 10), key)
                } else {
                    eng.add_vertex(data(&format!("d{i}")), key)
                }
            })
            .collect();
        let perm = permutation(n, perm_seed);
        // Candidate edges: forward through `perm`, between opposite kinds
        // (task->data is a Producer edge, data->task a Consumer edge).
        let mut candidates = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let (u, v) = (perm[i], perm[j]);
                if u % 2 != v % 2 {
                    candidates.push((u, v));
                }
            }
        }
        // n >= 4 with alternating parity guarantees opposite-kind pairs.
        assert!(!candidates.is_empty());

        let mut live_edges = Vec::new();
        for (i, &(op, pick, w)) in ops.iter().enumerate() {
            match op {
                // Insert a candidate edge (duplicates allowed: the live DFL
                // layer retracts wholesale, so the engine must tolerate
                // parallel edges too).
                0 | 1 => {
                    let (u, v) = candidates[(pick % candidates.len() as u64) as usize];
                    let dir = if u % 2 == 0 { FlowDir::Producer } else { FlowDir::Consumer };
                    let e = eng.add_edge(verts[u], verts[v], dir, vol(w));
                    live_edges.push(e);
                }
                // Unlink a random live edge.
                2 => {
                    if !live_edges.is_empty() {
                        let k = (pick % live_edges.len() as u64) as usize;
                        eng.unlink_edge(live_edges.swap_remove(k));
                    }
                }
                // Reweight a random task vertex.
                _ => {
                    let t = 2 * ((pick as usize / 2) % n.div_ceil(2));
                    eng.set_vertex_props(
                        verts[t],
                        VertexProps::Task(TaskProps { lifetime_ns: w * 7, ..Default::default() }),
                    );
                }
            }
            assert_matches_batch(&mut eng, &format!("after op {i} ({op})"));
        }
    }
}

/// 100k-vertex scale smoke test: a layered producer/consumer DAG (2.5k
/// tasks per layer × 20 layers of task+file pairs) built straight into the
/// engine, queried, edited at a single vertex, and re-queried. Exercises
/// the arena layout, the memoized topological order, and the dirty-cone
/// refresh at a size two orders of magnitude above the proptests — and
/// must stay fast enough for debug-build tier-1 runs.
#[test]
fn hundred_k_vertex_graph_smoke() {
    const WIDTH: usize = 2_500;
    const DEPTH: usize = 20;
    let mut eng = IncrementalGcpa::new(CostModel::Volume);
    let mut key = 0u64;
    let mut prev_files: Vec<_> = Vec::new();
    for layer in 0..DEPTH {
        let mut files = Vec::with_capacity(WIDTH);
        for i in 0..WIDTH {
            let t = eng.add_vertex(task(&format!("t{layer}_{i}"), 1_000), key);
            key += 1;
            // Consume one file from the previous layer (staggered).
            if let Some(&f) = prev_files.get((i + layer) % WIDTH.max(1)) {
                eng.add_edge(f, t, FlowDir::Consumer, vol(64));
            }
            let d = eng.add_vertex(data(&format!("d{layer}_{i}")), key);
            key += 1;
            eng.add_edge(t, d, FlowDir::Producer, vol(100 + (i as u64 % 37)));
            files.push(d);
        }
        prev_files = files;
    }
    assert_eq!(eng.graph().vertex_count(), 2 * WIDTH * DEPTH);

    let p = eng.critical_path();
    assert_eq!(p.vertices.len(), 2 * DEPTH, "chain spans every layer");
    assert!(p.total_cost > 0.0);

    // A single-edge reweight must shift only the affected cone and still
    // agree with a full batch sweep.
    let before = p.total_cost;
    let first_task = p.vertices[0];
    eng.set_vertex_props(
        first_task,
        VertexProps::Task(TaskProps { lifetime_ns: 5_000, ..Default::default() }),
    );
    let after = eng.critical_path();
    assert!(after.total_cost >= before, "reweight can only help this path");
    let batch = critical_path(eng.graph(), &eng.model());
    assert_eq!(after.vertices, batch.vertices);
    assert_eq!(after.total_cost.to_bits(), batch.total_cost.to_bits());
}
