//! The closed loop: measure a workflow, analyze its lifecycle graph, derive
//! coordination advice automatically, apply it, and verify the re-run is
//! faster — the end-to-end story of the paper, fully automated.

use dfl_core::analysis::advisor::advise;
use dfl_core::analysis::patterns::{analyze, AnalysisConfig};
use dfl_core::DflGraph;
use dfl_iosim::storage::TierKind;
use dfl_workflows::engine::{apply_advice, run, RunConfig};
use dfl_workflows::genomes::{generate, GenomesConfig};

fn analysis_cfg() -> AnalysisConfig {
    AnalysisConfig {
        volume_threshold: 32 << 20,
        fan_in_threshold: 3,
        ..Default::default()
    }
}

#[test]
fn measure_analyze_remediate_rerun_is_faster() {
    let cfg = GenomesConfig {
        chromosomes: 4,
        indiv_per_chr: 6,
        populations: 2,
        ..GenomesConfig::default()
    };
    let spec = generate(&cfg);

    // 1. Measure the naive configuration.
    let baseline_cfg = RunConfig::default_gpu(4);
    let baseline = run(&spec, &baseline_cfg).expect("baseline");

    // 2. Analyze the measured lifecycle graph.
    let g = DflGraph::from_measurements(&baseline.measurements);
    let opportunities = analyze(&g, &analysis_cfg());
    assert!(!opportunities.is_empty());

    // 3. Derive advice automatically.
    let advice = advise(&g, &opportunities);
    assert!(!advice.is_empty(), "advisor found nothing on a staging-friendly workflow");
    assert!(
        advice.stage_inputs.contains("columns.txt"),
        "the shared columns input is the canonical staging candidate: {:?}",
        advice.stage_inputs
    );
    assert!(advice.colocate_consumers, "chromosome fan-out ⇒ co-location");
    assert!(advice.local_intermediates, "merge aggregation ⇒ local intermediates");

    // 4. Apply and re-run.
    let mut tuned_cfg = RunConfig::default_gpu(4);
    apply_advice(&mut tuned_cfg, &advice, TierKind::Ramdisk);
    assert!(tuned_cfg.staging.stage_inputs.is_some());
    let tuned = run(&spec, &tuned_cfg).expect("tuned");

    // 5. The advised configuration must win, substantially.
    assert!(
        tuned.makespan_s < baseline.makespan_s * 0.6,
        "advice should speed the run: {:.2}s → {:.2}s",
        baseline.makespan_s,
        tuned.makespan_s
    );
}

#[test]
fn advice_is_stable_across_measured_runs() {
    let cfg = GenomesConfig::tiny();
    let spec = generate(&cfg);
    let derive = || {
        let r = run(&spec, &RunConfig::default_gpu(2)).unwrap();
        let g = DflGraph::from_measurements(&r.measurements);
        advise(&g, &analyze(&g, &analysis_cfg()))
    };
    assert_eq!(derive(), derive());
}
