//! Stress tests: ≥1k concurrent flows through shared tiers and NICs.
//!
//! These scenarios exercise the incremental flow engine at a scale where
//! the old full-recompute model was quadratic: the load index keeps
//! re-rating local to the touched resources and the completion heap keeps
//! `next_completion` sublinear.

use dfl_iosim::breakdown::FlowTag;
use dfl_iosim::cluster::ClusterSpec;
use dfl_iosim::flow::{FlowNet, FlowOwner};
use dfl_iosim::sim::{Action, JobSpec, SimConfig, Simulation};
use dfl_iosim::storage::{TierKind, TierRef};
use dfl_iosim::time::SimTime;

fn owner(job: u32) -> FlowOwner {
    FlowOwner { job, tag: FlowTag::LocalRead, background: false }
}

/// 1.5k staggered flows over 16 shared tiers × 64 NICs, drained to empty:
/// completions must come out in non-decreasing time order and leave the
/// network fully empty.
#[test]
fn fifteen_hundred_flow_drain_is_consistent() {
    const TIERS: u64 = 16;
    const NICS: u64 = 64;
    const FLOWS: u64 = 1500;
    let mut net = FlowNet::new();
    let tiers: Vec<_> = (0..TIERS).map(|i| net.add_resource(&format!("tier{i}"), 8_000.0)).collect();
    let nics: Vec<_> = (0..NICS).map(|i| net.add_resource(&format!("nic{i}"), 1_000.0)).collect();
    for i in 0..FLOWS {
        let bytes = 1_000.0 + (i as f64 * 97.0) % 5_000.0;
        let path = vec![tiers[(i % TIERS) as usize], nics[(i % NICS) as usize]];
        // Staggered arrivals, 1 ms apart, so starts re-rate live flows.
        net.start(SimTime(i * 1_000_000), &path, bytes, owner(i as u32));
    }
    assert_eq!(net.active_count(), FLOWS as usize);
    let mut done = 0u64;
    let mut last = SimTime::ZERO;
    while let Some((t, k)) = net.next_completion() {
        assert!(t >= last, "completion times must be non-decreasing");
        last = t;
        net.complete(t, k);
        done += 1;
    }
    assert_eq!(done, FLOWS);
    assert_eq!(net.active_count(), 0);
    assert!(last > SimTime::ZERO);
}

/// Full-simulator stress: 1024 jobs (32 nodes × 32 cores, all saturated)
/// each streaming a distinct file off the shared BeeGFS tier — ≥1k
/// concurrent flows through the tier plus the per-node NICs.
#[test]
fn thousand_concurrent_jobs_on_shared_tier() {
    const NODES: usize = 32;
    const JOBS: usize = NODES * 32;
    let mut sim = Simulation::new(ClusterSpec::gpu_cluster(NODES), SimConfig::default());
    let mut jobs = Vec::with_capacity(JOBS);
    for i in 0..JOBS {
        let file = format!("in{i}");
        sim.fs_mut().create_external(&file, (1 << 20) + (i as u64) * 4096, TierRef::shared(TierKind::Beegfs));
        jobs.push(sim.submit(
            JobSpec::new(&format!("j-{i}"), (i % NODES) as u32).action(Action::read_file(&file)),
        ));
    }
    sim.run().unwrap();
    assert!(sim.time() > SimTime::ZERO);
    for j in jobs {
        let report = sim.job_report(j).unwrap();
        assert!(report.end_ns > 0, "every job must run to completion");
    }
}
