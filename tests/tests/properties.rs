//! Property-based tests over the full stack: volume conservation between
//! monitor and graph, critical-path/caterpillar invariants on random DAGs,
//! histogram space bounds, and sampling determinism.

use proptest::prelude::*;

use dfl_core::analysis::caterpillar::{caterpillar, CaterpillarRule};
use dfl_core::analysis::cost::CostModel;
use dfl_core::analysis::critical_path::critical_path;
use dfl_core::props::{DataProps, EdgeProps, FlowDir, TaskProps};
use dfl_core::DflGraph;
use dfl_trace::{IoTiming, Monitor, MonitorConfig, OpenMode};

/// Strategy: a random layered producer/consumer workload description.
/// Each entry: (files written per task, bytes per write, reads-of-previous).
fn workload() -> impl Strategy<Value = Vec<(u8, u32, u8)>> {
    prop::collection::vec((1u8..4, 1u32..2_000_000, 0u8..4), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bytes written through the monitor equal the producer-edge volumes in
    /// the graph, and data-vertex in-volume equals bytes on disk.
    #[test]
    fn volume_conservation(tasks in workload()) {
        let m = Monitor::new(MonitorConfig::default());
        let mut produced: Vec<(String, u64)> = Vec::new();
        let mut expected_written = 0u64;
        let mut expected_read = 0u64;

        for (ti, (n_files, bytes, n_reads)) in tasks.iter().enumerate() {
            let ctx = m.begin_task(&format!("t-{ti}"), ti as u64 * 1000);
            // Read some previously produced files.
            for r in 0..*n_reads {
                if produced.is_empty() { break; }
                let (path, size) = &produced[(ti + r as usize) % produced.len()];
                let fd = ctx.open(path, OpenMode::Read, Some(*size), ti as u64 * 1000);
                let n = ctx.read(fd, *size, IoTiming::new(ti as u64 * 1000, 10)).unwrap();
                expected_read += n;
                ctx.close(fd, ti as u64 * 1000 + 10).unwrap();
            }
            // Write fresh files.
            for f in 0..*n_files {
                let path = format!("f-{ti}-{f}");
                let fd = ctx.open(&path, OpenMode::Write, None, ti as u64 * 1000);
                ctx.write(fd, u64::from(*bytes), IoTiming::new(ti as u64 * 1000, 10)).unwrap();
                ctx.close(fd, ti as u64 * 1000 + 20).unwrap();
                produced.push((path, u64::from(*bytes)));
                expected_written += u64::from(*bytes);
            }
            ctx.finish(ti as u64 * 1000 + 100);
        }

        let set = m.snapshot();
        let g = DflGraph::from_measurements(&set);
        prop_assert!(g.is_dag());

        let producer_volume: u64 = g.edges()
            .filter(|(_, e)| e.dir == FlowDir::Producer)
            .map(|(_, e)| e.props.volume)
            .sum();
        let consumer_volume: u64 = g.edges()
            .filter(|(_, e)| e.dir == FlowDir::Consumer)
            .map(|(_, e)| e.props.volume)
            .sum();
        prop_assert_eq!(producer_volume, expected_written);
        prop_assert_eq!(consumer_volume, expected_read);

        // Per data vertex: in-volume equals its size (single full write).
        for d in g.data_vertices() {
            let size = g.vertex(d).props.as_data().unwrap().size;
            prop_assert_eq!(g.in_volume(d), size);
        }
    }

    /// Critical path is a real path, is maximal among single edges, and the
    /// caterpillar always contains it.
    #[test]
    fn critical_path_invariants(
        widths in prop::collection::vec(1usize..5, 1..5),
        volumes in prop::collection::vec(1u64..1_000_000, 32),
    ) {
        // Build a random layered bipartite DAG.
        let mut g = DflGraph::new();
        let mut vi = 0usize;
        let mut prev_layer: Vec<_> = (0..widths[0])
            .map(|i| g.add_task(&format!("t0-{i}"), "t", TaskProps::default()))
            .collect();
        for (li, &w) in widths.iter().enumerate().skip(1) {
            let mut layer = Vec::new();
            for i in 0..w {
                let d = g.add_data(&format!("d{li}-{i}"), "d", DataProps::default());
                let t = g.add_task(&format!("t{li}-{i}"), "t", TaskProps::default());
                for &p in &prev_layer {
                    let vol = volumes[vi % volumes.len()];
                    vi += 1;
                    g.add_edge(p, d, FlowDir::Producer, EdgeProps { volume: vol, ..Default::default() });
                }
                g.add_edge(d, t, FlowDir::Consumer, EdgeProps {
                    volume: volumes[vi % volumes.len()],
                    ..Default::default()
                });
                vi += 1;
                layer.push(t);
            }
            prev_layer = layer;
        }

        let cp = critical_path(&g, &CostModel::Volume);
        // Path property: consecutive vertices joined by the listed edges.
        for (i, &e) in cp.edges.iter().enumerate() {
            prop_assert_eq!(g.edge(e).src, cp.vertices[i]);
            prop_assert_eq!(g.edge(e).dst, cp.vertices[i + 1]);
        }
        // Maximality: no single edge outweighs the whole path.
        let max_edge = g.edges().map(|(_, e)| e.props.volume).max().unwrap_or(0);
        prop_assert!(cp.total_cost >= max_edge as f64);

        // Caterpillar ⊇ spine; members within distance 2.
        let cat = caterpillar(&g, &cp, CaterpillarRule::Dfl);
        for v in &cp.vertices {
            prop_assert!(cat.membership(g.vertex_count())[v.0 as usize]);
        }
        prop_assert!(cat.len() <= g.vertex_count());
    }

    /// The monitor's space is bounded: tracked locations per pair never
    /// exceed the policy bound regardless of file size or access count.
    #[test]
    fn histogram_space_bound(
        n_ops in 1usize..300,
        op_len in 1u64..(1 << 22),
        stride in 0u64..(1 << 24),
    ) {
        let m = Monitor::new(MonitorConfig::default());
        let ctx = m.begin_task("t-0", 0);
        let fd = ctx.open("big", OpenMode::Write, None, 0);
        for i in 0..n_ops {
            ctx.write_at(fd, i as u64 * stride, op_len, IoTiming::new(i as u64, 1)).unwrap();
        }
        ctx.close(fd, n_ops as u64 + 1).unwrap();
        ctx.finish(n_ops as u64 + 2);

        let set = m.snapshot();
        let rec = &set.records[0];
        // Default write policy: 256 target blocks, bound 512 locations.
        prop_assert!(rec.histogram.tracked_locations() <= 512,
            "{} locations", rec.histogram.tracked_locations());
        prop_assert_eq!(rec.bytes_written, n_ops as u64 * op_len);
    }

    /// Spatial sampling is deterministic and independent of access order:
    /// two monitors reading the same file in opposite orders produce the
    /// same per-file footprint estimates.
    #[test]
    fn sampling_order_independence(blocks in 2u64..200) {
        let run_order = |reverse: bool| {
            let m = Monitor::new(MonitorConfig::default().with_sampling_percent(25));
            let ctx = m.begin_task("t-0", 0);
            let size = blocks * 4096;
            let fd = ctx.open("f", OpenMode::Read, Some(size), 0);
            let idx: Vec<u64> = if reverse { (0..blocks).rev().collect() } else { (0..blocks).collect() };
            for i in idx {
                ctx.read_at(fd, i * 4096, 4096, IoTiming::new(i, 1)).unwrap();
            }
            ctx.close(fd, blocks + 1).unwrap();
            ctx.finish(blocks + 2);
            let set = m.snapshot();
            (set.records[0].read_footprint(), set.records[0].histogram.tracked_locations())
        };
        let fwd = run_order(false);
        let rev = run_order(true);
        prop_assert_eq!(fwd, rev);
    }
}
