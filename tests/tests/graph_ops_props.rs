//! Property tests for graph transformations: template aggregation conserves
//! volumes and instances, averaged graphs interpolate, near-critical paths
//! stay disjoint, and every renderer handles arbitrary measured graphs.

use proptest::prelude::*;

use dfl_core::analysis::cost::CostModel;
use dfl_core::analysis::critical_path::critical_path;
use dfl_core::analysis::near_critical::k_disjoint_paths;
use dfl_core::viz::sankey::{SankeyDiagram, SankeyOptions};
use dfl_core::viz::{render_ascii, to_dot, to_html};
use dfl_core::DflGraph;
use dfl_trace::{IoTiming, Monitor, MonitorConfig, OpenMode};

/// Builds a measured graph from a random layered workload description:
/// per layer, (task count, bytes each task writes, whether tasks re-read
/// the previous layer's files).
fn measured_graph(layers: &[(u8, u32, bool)]) -> DflGraph {
    let m = Monitor::new(MonitorConfig::default());
    let mut prev_files: Vec<(String, u64)> = Vec::new();
    let mut clock = 0u64;
    for (li, &(n_tasks, bytes, reread)) in layers.iter().enumerate() {
        let mut next_files = Vec::new();
        for t in 0..n_tasks.max(1) {
            let ctx = m.begin_task(&format!("l{li}-t{t}"), clock);
            if reread {
                for (path, size) in &prev_files {
                    let fd = ctx.open(path, OpenMode::Read, Some(*size), clock);
                    ctx.read(fd, *size, IoTiming::new(clock, 5)).unwrap();
                    ctx.close(fd, clock + 10).unwrap();
                }
            }
            let path = format!("f-l{li}-t{t}");
            let fd = ctx.open(&path, OpenMode::Write, None, clock);
            ctx.write(fd, u64::from(bytes), IoTiming::new(clock, 5)).unwrap();
            ctx.close(fd, clock + 20).unwrap();
            ctx.finish(clock + 30);
            next_files.push((path, u64::from(bytes)));
            clock += 50;
        }
        prev_files = next_files;
    }
    DflGraph::from_measurements(&m.snapshot())
}

fn layer_strategy() -> impl Strategy<Value = Vec<(u8, u32, bool)>> {
    prop::collection::vec((1u8..5, 1u32..1_000_000, any::<bool>()), 1..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Template aggregation conserves total volume and vertex instances.
    #[test]
    fn template_conserves_volume_and_instances(layers in layer_strategy()) {
        let g = measured_graph(&layers);
        let t = g.to_template();

        let total = |gr: &DflGraph| -> u64 {
            gr.edges().map(|(_, e)| e.props.volume).sum()
        };
        prop_assert_eq!(total(&g), total(&t.graph), "volume conserved");

        let orig_tasks = g.task_vertices().count() as u32;
        let template_instances: u32 = t
            .graph
            .task_vertices()
            .map(|v| t.graph.vertex(v).props.as_task().unwrap().instances)
            .sum();
        prop_assert_eq!(orig_tasks, template_instances, "instances conserved");
        prop_assert!(t.graph.vertex_count() <= g.vertex_count());
    }

    /// k-disjoint paths never reuse a vertex and come out cost-ordered.
    #[test]
    fn k_paths_disjoint_and_ordered(layers in layer_strategy()) {
        let g = measured_graph(&layers);
        let paths = k_disjoint_paths(&g, &CostModel::Volume, 4);
        let mut seen = std::collections::HashSet::new();
        let mut last = f64::INFINITY;
        for p in &paths {
            prop_assert!(p.total_cost <= last + 1e-9, "descending cost");
            last = p.total_cost;
            for v in &p.vertices {
                prop_assert!(seen.insert(*v), "vertex reuse");
            }
        }
    }

    /// Renderers never panic and produce structurally sane output for any
    /// measured graph.
    #[test]
    fn renderers_total(layers in layer_strategy()) {
        let g = measured_graph(&layers);
        let cp = critical_path(&g, &CostModel::Volume);

        let ascii = render_ascii(&g, Some(&cp));
        prop_assert!(ascii.contains("layer 0:"));

        let dot = to_dot(&g, "prop", Some(&cp));
        prop_assert!(dot.starts_with("digraph"));
        prop_assert_eq!(dot.matches(" -> ").count(), g.edge_count());

        let html = to_html(&g, "prop", Some(&cp));
        prop_assert_eq!(html.matches("<rect").count(), g.vertex_count());

        let sankey = SankeyDiagram::from_graph(&g, &SankeyOptions {
            critical_path: Some(cp),
            ..Default::default()
        });
        prop_assert_eq!(sankey.nodes.len(), g.vertex_count());
        prop_assert_eq!(sankey.links.len(), g.edge_count());
        // Indices in range.
        for l in &sankey.links {
            prop_assert!(l.source < sankey.nodes.len());
            prop_assert!(l.target < sankey.nodes.len());
        }
    }

    /// Graph JSON round trip preserves analysis results.
    #[test]
    fn graph_json_round_trip_preserves_analysis(layers in layer_strategy()) {
        let g = measured_graph(&layers);
        let back = DflGraph::from_json(&g.to_json().unwrap()).unwrap();
        let a = critical_path(&g, &CostModel::Volume);
        let b = critical_path(&back, &CostModel::Volume);
        prop_assert_eq!(a.total_cost, b.total_cost);
        prop_assert_eq!(a.vertices, b.vertices);
    }
}
