//! Robustness suite for the `datalife serve` daemon: admission control and
//! typed load shedding, deadline edges, cancellation and graceful drain
//! through the checkpoint path, worker panic isolation, and — the core
//! claim — kill -9 recovery that is *byte-identical* to an uninterrupted
//! run, proven here in-process by the deterministic chaos kill switch
//! (the real-SIGKILL variant lives in the CLI tests and the CI smoke job).

use std::path::PathBuf;
use std::sync::Arc;

use dfl_serve::{Client, Daemon, NetServer, Request, ServeConfig};
use dfl_workflows::catalog;
use serde::Value;

fn state_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dfl-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn daemon(dir: &PathBuf, tweak: impl FnOnce(&mut ServeConfig)) -> Daemon {
    let mut cfg = ServeConfig::new(dir);
    tweak(&mut cfg);
    Daemon::start(cfg).expect("daemon starts")
}

fn submit(workflow: &str, tweak: impl FnOnce(&mut Request)) -> String {
    let mut r = Request::new("submit");
    r.workflow = Some(workflow.into());
    tweak(&mut r);
    r.to_line()
}

fn stream_line(job: u64) -> String {
    let mut r = Request::new("stream");
    r.job = Some(job);
    r.to_line()
}

fn v(line: &str) -> Value {
    serde_json::from_str(line).unwrap_or_else(|e| panic!("bad response line {line:?}: {e}"))
}

/// Submits and asserts acceptance, returning the job id.
fn accept(d: &Daemon, line: &str) -> u64 {
    let reply = v(&d.request(line)[0]);
    assert_eq!(reply["type"].as_str(), Some("accepted"), "{reply:?}");
    reply["job"].as_u64().unwrap()
}

/// Streams the job to its terminal line and returns (state, detail).
fn run_to_end(d: &Daemon, job: u64) -> (String, String) {
    let lines = d.request(&stream_line(job));
    let last = v(lines.last().expect("stream emits a terminal line"));
    assert_eq!(last["type"].as_str(), Some("job"), "{last:?}");
    (
        last["state"].as_str().unwrap().to_owned(),
        last["detail"].as_str().unwrap_or_default().to_owned(),
    )
}

fn result_bytes(dir: &std::path::Path, job: u64) -> Vec<u8> {
    let path = dir.join(format!("job-{job}-result.json"));
    std::fs::read(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn submit_runs_to_done_and_writes_a_result_file() {
    let dir = state_dir("done");
    let d = daemon(&dir, |_| {});
    let job = accept(&d, &submit("smoke", |_| {}));
    let (state, detail) = run_to_end(&d, job);
    assert_eq!(state, "done", "{detail}");

    let res = v(std::str::from_utf8(&result_bytes(&dir, job)).unwrap());
    assert!(res["makespan_bits"].as_u64().unwrap() > 0);
    assert!(res["events_dispatched"].as_u64().unwrap() > 0);
    assert!(!res["chrome_trace"].as_str().unwrap().is_empty());
    assert!(!res["jsonl"].as_str().unwrap().is_empty());
    d.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_deadline_is_rejected_at_admission_with_typed_reason() {
    let dir = state_dir("deadline0");
    let d = daemon(&dir, |c| c.workers = 0);
    let reply = v(&d.request(&submit("smoke", |r| r.deadline_ms = Some(0)))[0]);
    assert_eq!(reply["type"].as_str(), Some("rejected"));
    assert_eq!(reply["reason"].as_str(), Some("deadline"));
    assert_eq!(d.snapshot().counter("serve_rejected_deadline"), 1);
    // Nothing was admitted, so nothing is durable.
    assert_eq!(d.snapshot().counter("serve_accepted"), 0);
    d.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_requests_are_typed_rejections() {
    let dir = state_dir("badreq");
    let d = daemon(&dir, |c| c.workers = 0);
    for (line, why) in [
        (submit("not-a-workflow", |_| {}), "unknown workflow"),
        (submit("smoke", |r| r.scale = Some("huge".into())), "unknown scale"),
        (Request::new("submit").to_line(), "missing workflow"),
    ] {
        let reply = v(&d.request(&line)[0]);
        assert_eq!(reply["type"].as_str(), Some("rejected"), "{why}: {reply:?}");
        assert_eq!(reply["reason"].as_str(), Some("bad_request"), "{why}");
    }
    assert_eq!(d.snapshot().counter("serve_rejected_bad_request"), 3);
    d.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_sheds_typed_and_accepted_jobs_survive_restart() {
    let dir = state_dir("storm");
    // No workers: admission fills the bounded queue deterministically.
    let d = daemon(&dir, |c| {
        c.workers = 0;
        c.queue_cap = 3;
    });
    let mut accepted = Vec::new();
    let mut shed = 0;
    for i in 0..5 {
        let reply = v(&d.request(&submit("smoke", |r| r.seed = Some(i)))[0]);
        match reply["type"].as_str() {
            Some("accepted") => accepted.push(reply["job"].as_u64().unwrap()),
            Some("rejected") => {
                assert_eq!(reply["reason"].as_str(), Some("capacity"), "{reply:?}");
                shed += 1;
            }
            other => panic!("unexpected reply type {other:?}"),
        }
    }
    assert_eq!((accepted.len(), shed), (3, 2), "bounded queue sheds exactly the overflow");
    let snap = d.snapshot();
    assert_eq!(snap.counter("serve_rejected_capacity"), 2);
    assert_eq!(snap.counter("serve_accepted"), 3);
    d.shutdown();

    // Zero accepted-job losses: a restart with workers finishes every job
    // that was acknowledged before the daemon went down.
    let d = daemon(&dir, |c| c.workers = 2);
    for job in accepted {
        let (state, detail) = run_to_end(&d, job);
        assert_eq!(state, "done", "job {job}: {detail}");
        assert!(dir.join(format!("job-{job}-result.json")).exists());
    }
    d.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn midrun_deadline_preempts_at_checkpoint_keeping_attempt_ledger() {
    // Golden makespan of the exact job the daemon will run.
    let (spec, cfg) = catalog::build("genomes", catalog::Scale::Tiny, 2).unwrap();
    let golden = dfl_workflows::run(&spec, &cfg).unwrap();
    let deadline_ms = (golden.makespan_s * 1000.0 / 2.0) as u64;
    assert!(deadline_ms >= 1, "genomes tiny long enough to halve");

    let dir = state_dir("deadline-mid");
    let d = daemon(&dir, |_| {});
    let job = accept(&d, &submit("genomes", |r| r.deadline_ms = Some(deadline_ms)));
    let (state, detail) = run_to_end(&d, job);
    assert_eq!(state, "deadline", "{detail}");
    assert!(detail.contains("parked"), "{detail}");
    assert_eq!(d.snapshot().counter("serve_deadline_preempted"), 1);

    // The preemption went through the checkpoint path: the parked manifest
    // carries the attempt ledger, nothing was lost.
    let m = dfl_workflows::load_latest(&dir.join(format!("job-{job}"))).unwrap();
    assert!(!m.ledger.is_empty(), "attempt ledger parked with the manifest");
    d.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_panic_is_a_typed_failure_and_daemon_keeps_serving() {
    let dir = state_dir("panic");
    let d = daemon(&dir, |_| {});
    let bad = accept(&d, &submit("smoke", |r| r.panic = Some(true)));
    let (state, detail) = run_to_end(&d, bad);
    assert_eq!(state, "failed");
    assert!(detail.contains("worker panic"), "{detail}");
    assert_eq!(d.snapshot().counter("serve_panics"), 1);

    // The pool survived: the next job runs to completion normally.
    let good = accept(&d, &submit("smoke", |_| {}));
    assert_eq!(run_to_end(&d, good).0, "done");
    d.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_preempts_running_job_via_checkpoint_path() {
    let dir = state_dir("cancel-run");
    // Small windows so the stream ticks well before the run finishes.
    let d = daemon(&dir, |c| c.window_ms = 20);
    let job = accept(&d, &submit("genomes", |_| {}));

    // Deterministic mid-run hook: the first streamed window proves the job
    // is on a worker between pause points; cancel right then.
    let mut cancel_sent = false;
    let mut lines = Vec::new();
    let mut cancel_req = Request::new("cancel");
    cancel_req.job = Some(job);
    d.handle_line(&stream_line(job), &mut |line| {
        if !cancel_sent && line.contains("\"type\":\"window\"") {
            cancel_sent = true;
            let ack = v(&d.request(&cancel_req.to_line())[0]);
            assert_eq!(ack["detail"].as_str(), Some("cancel requested"), "{ack:?}");
        }
        lines.push(line);
    });
    assert!(cancel_sent, "run emitted no windows before finishing");
    let last = v(lines.last().unwrap());
    assert_eq!(last["state"].as_str(), Some("cancelled"), "{last:?}");
    assert_eq!(d.snapshot().counter("serve_cancelled"), 1);
    d.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_queued_job_removes_it_before_dispatch() {
    let dir = state_dir("cancel-q");
    let d = daemon(&dir, |c| c.workers = 0);
    let job = accept(&d, &submit("smoke", |_| {}));
    let mut cancel = Request::new("cancel");
    cancel.job = Some(job);
    let reply = v(&d.request(&cancel.to_line())[0]);
    assert_eq!(reply["state"].as_str(), Some("cancelled"));
    // Idempotent: a second cancel reports the terminal state.
    let reply = v(&d.request(&cancel.to_line())[0]);
    assert_eq!(reply["state"].as_str(), Some("cancelled"));
    assert_eq!(d.snapshot().counter("serve_cancelled"), 1);
    d.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_parks_running_work_and_restart_finishes_it_byte_identically() {
    // Golden: the same submission in a clean daemon, uninterrupted.
    let golden_dir = state_dir("drain-golden");
    let d = daemon(&golden_dir, |c| c.window_ms = 20);
    let job = accept(&d, &submit("genomes", |r| r.seed = Some(11)));
    assert_eq!(run_to_end(&d, job).0, "done");
    let golden = result_bytes(&golden_dir, job);
    d.shutdown();

    // Same job, but drained mid-run: parked at a checkpoint, not killed.
    let dir = state_dir("drain");
    let d = daemon(&dir, |c| c.window_ms = 20);
    let job2 = accept(&d, &submit("genomes", |r| r.seed = Some(11)));
    assert_eq!(job, job2, "fresh ledgers allocate the same id");
    let mut drained = false;
    let mut lines = Vec::new();
    d.handle_line(&stream_line(job2), &mut |line| {
        if !drained && line.contains("\"type\":\"window\"") {
            drained = true;
            d.drain(); // blocks until the worker parks the job
        }
        lines.push(line);
    });
    assert!(drained, "run emitted no windows before finishing");
    let last = v(lines.last().unwrap());
    assert_eq!(last["state"].as_str(), Some("running"), "{last:?}");
    assert!(last["detail"].as_str().unwrap().contains("parked for drain"), "{last:?}");
    assert_eq!(d.snapshot().counter("serve_parked"), 1);
    // Draining daemons shed new work with a typed reason.
    let reply = v(&d.request(&submit("smoke", |_| {}))[0]);
    assert_eq!(reply["reason"].as_str(), Some("draining"));
    d.shutdown();

    // Restart: the parked job resumes from its manifest and the result is
    // byte-identical to the uninterrupted run's.
    let d = daemon(&dir, |c| c.window_ms = 20);
    assert_eq!(d.snapshot().counter("serve_recovered"), 1);
    let (state, detail) = run_to_end(&d, job2);
    assert_eq!(state, "done", "{detail}");
    assert_eq!(result_bytes(&dir, job2), golden, "park/resume changed the result bytes");
    d.shutdown();
    let _ = std::fs::remove_dir_all(&golden_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_kill_recovery_is_byte_identical_at_three_seeded_points() {
    // Golden uninterrupted run (also yields the event-count coordinate
    // system for the kill points).
    let golden_dir = state_dir("chaos-golden");
    let d = daemon(&golden_dir, |_| {});
    let job = accept(&d, &submit("genomes", |r| r.seed = Some(3)));
    assert_eq!(run_to_end(&d, job).0, "done");
    let golden = result_bytes(&golden_dir, job);
    let total = v(std::str::from_utf8(&golden).unwrap())["events_dispatched"].as_u64().unwrap();
    d.shutdown();
    let _ = std::fs::remove_dir_all(&golden_dir);
    assert!(total > 8, "need room for mid-run kill points, got {total}");

    for (i, at_event) in [total / 4, total / 2, total * 3 / 4].into_iter().enumerate() {
        let dir = state_dir(&format!("chaos-{i}"));
        // abort_on_chaos=false models the kill in-process: the job dies at
        // the exact dispatch with nothing finalized — the ledger still says
        // "running", like after a real kill -9 — but the daemon object
        // survives so the test can restart on the same state dir.
        let d = daemon(&dir, |_| {});
        let job = accept(
            &d,
            &submit("genomes", |r| {
                r.seed = Some(3);
                r.chaos_at = Some(at_event);
            }),
        );
        // The stream ends with the chaos notice (no terminal state).
        let lines = d.request(&stream_line(job));
        assert!(
            lines.last().unwrap().contains("chaos kill"),
            "kill at {at_event}: {lines:?}"
        );
        assert_eq!(d.snapshot().counter("serve_chaos_crashes"), 1);
        d.shutdown();

        // Restart recovers the interrupted job by resuming its latest
        // readable manifest; chaos is not re-armed on resume.
        let d = daemon(&dir, |_| {});
        assert_eq!(d.snapshot().counter("serve_recovered"), 1);
        let (state, detail) = run_to_end(&d, job);
        assert_eq!(state, "done", "kill at {at_event}: {detail}");
        assert_eq!(
            result_bytes(&dir, job),
            golden,
            "kill at event {at_event}: recovered result diverged from golden"
        );
        d.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn torn_job_manifest_is_skipped_on_recovery() {
    let dir = state_dir("torn");
    // Park a genomes run mid-flight via drain (gives the job real
    // checkpoint manifests), then tear the newest manifest.
    let d = daemon(&dir, |c| c.window_ms = 20);
    let job = accept(&d, &submit("genomes", |_| {}));
    let mut drained = false;
    d.handle_line(&stream_line(job), &mut |line| {
        if !drained && line.contains("\"type\":\"window\"") {
            drained = true;
            d.drain();
        }
    });
    assert!(drained);
    d.shutdown();

    let job_dir = dir.join(format!("job-{job}"));
    let newest = std::fs::read_dir(&job_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.file_name().unwrap().to_str().unwrap().starts_with("manifest-"))
        .max()
        .expect("parked job has manifests");
    let bytes = std::fs::read(&newest).unwrap();
    std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap(); // torn mid-write

    let d = daemon(&dir, |c| c.window_ms = 20);
    let (state, detail) = run_to_end(&d, job);
    assert_eq!(state, "done", "{detail}");
    assert_eq!(
        d.snapshot().counter("serve_torn_manifests"),
        1,
        "the torn top manifest was skipped with a typed warning"
    );
    d.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tenants_share_the_pool_fairly_under_backlog() {
    // Admission-only daemon: tenant "noisy" floods, "quiet" submits two.
    let dir = state_dir("tenants");
    let d = daemon(&dir, |c| {
        c.workers = 0;
        c.queue_cap = 16;
    });
    let mut jobs = Vec::new();
    for i in 0..6 {
        jobs.push(accept(
            &d,
            &submit("smoke", |r| {
                r.tenant = Some("noisy".into());
                r.seed = Some(i);
            }),
        ));
    }
    let quiet: Vec<u64> = (0..2)
        .map(|i| {
            accept(
                &d,
                &submit("smoke", |r| {
                    r.tenant = Some("quiet".into());
                    r.seed = Some(100 + i);
                }),
            )
        })
        .collect();
    d.shutdown();

    // One worker drains the backlog; every accepted job completes —
    // fair-share ordering must not starve or lose anyone.
    let d = daemon(&dir, |c| c.workers = 1);
    for job in jobs.iter().chain(&quiet) {
        let (state, detail) = run_to_end(&d, *job);
        assert_eq!(state, "done", "job {job}: {detail}");
    }
    assert_eq!(d.snapshot().counter("serve_completed"), 8);
    d.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_rebuild_from_ledger_replay_after_crash_restart() {
    // Two completed jobs and one killed mid-run give the ledger a mixed
    // history to replay.
    let dir = state_dir("replay-metrics");
    let d = daemon(&dir, |_| {});
    for seed in [1, 2] {
        let job = accept(&d, &submit("smoke", |r| r.seed = Some(seed)));
        assert_eq!(run_to_end(&d, job).0, "done");
    }
    let killed = accept(
        &d,
        &submit("genomes", |r| {
            r.seed = Some(3);
            r.chaos_at = Some(8);
        }),
    );
    let lines = d.request(&stream_line(killed));
    assert!(lines.last().unwrap().contains("chaos kill"), "{lines:?}");
    d.shutdown();

    // Restart without workers: recovery re-queues the killed job and the
    // durable-state counters/gauges must match the ledger ground truth —
    // not start from zero — before anything new runs.
    let d = daemon(&dir, |c| c.workers = 0);
    let snap = d.snapshot();
    assert_eq!(snap.counter("serve_accepted"), 3, "all ledgered jobs replayed");
    assert_eq!(snap.counter("serve_completed"), 2);
    assert_eq!(snap.counter("serve_recovered"), 1);
    assert_eq!(snap.gauge("serve_jobs_total"), Some(3.0));
    assert_eq!(snap.gauge("serve_jobs_completed"), Some(2.0));
    assert_eq!(snap.gauge("serve_jobs_recovered"), Some(1.0));
    assert_eq!(snap.gauge("serve_queue_depth"), Some(1.0));
    d.shutdown();

    // The recovery commit demoted the job to queued, so a further restart
    // replays it as ordinary backlog — recovered stays 0, nothing double
    // counts — and finishing it moves the completed gauge, not accepted.
    let d = daemon(&dir, |c| c.workers = 1);
    assert_eq!(d.snapshot().counter("serve_recovered"), 0);
    assert_eq!(run_to_end(&d, killed).0, "done");
    let snap = d.snapshot();
    assert_eq!(snap.counter("serve_accepted"), 3);
    assert_eq!(snap.counter("serve_completed"), 3);
    assert_eq!(snap.gauge("serve_jobs_completed"), Some(3.0));
    assert_eq!(snap.gauge("serve_queue_depth"), Some(0.0));
    d.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tcp_and_unix_transports_serve_the_protocol() {
    let dir = state_dir("net");
    std::fs::create_dir_all(&dir).unwrap();
    let d = Arc::new(daemon(&dir, |_| {}));
    let ns = NetServer::start(d.clone(), &dir).expect("net server starts");

    // TCP via the published endpoint file.
    let mut c = Client::connect_dir(&dir).expect("client connects");
    assert_eq!(v(&c.roundtrip(r#"{"op":"ping"}"#).unwrap())["type"].as_str(), Some("pong"));
    let reply = v(&c.roundtrip(&submit("smoke", |_| {})).unwrap());
    assert_eq!(reply["type"].as_str(), Some("accepted"));
    let job = reply["job"].as_u64().unwrap();
    let lines = c.stream_to_end(&stream_line(job)).unwrap();
    assert_eq!(v(lines.last().unwrap())["state"].as_str(), Some("done"));
    // Malformed input gets a typed error, connection stays usable.
    assert_eq!(v(&c.roundtrip("not json").unwrap())["type"].as_str(), Some("error"));
    assert_eq!(v(&c.roundtrip(r#"{"op":"ping"}"#).unwrap())["type"].as_str(), Some("pong"));

    // Unix socket speaks the same protocol.
    {
        use std::io::{BufRead, BufReader, Write};
        let sock = std::os::unix::net::UnixStream::connect(dfl_serve::net::sock_path(&dir))
            .expect("unix connect");
        let mut w = sock.try_clone().unwrap();
        writeln!(w, r#"{{"op":"ping"}}"#).unwrap();
        let mut line = String::new();
        BufReader::new(sock).read_line(&mut line).unwrap();
        assert_eq!(v(line.trim())["type"].as_str(), Some("pong"));
    }

    // Shutdown op: acknowledged, then the server's wait() releases.
    assert_eq!(
        v(&c.roundtrip(r#"{"op":"shutdown"}"#).unwrap())["what"].as_str(),
        Some("shutdown")
    );
    ns.wait();
    d.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
