//! Property tests tying the observability layer to the simulator's own
//! accounting: the timeline is not a parallel bookkeeping system that can
//! drift, it must agree exactly with the breakdown totals the analysis
//! layer consumes.

use std::collections::BTreeMap;

use proptest::prelude::*;

use dfl_iosim::breakdown::FlowTag;
use dfl_obs::{ObsConfig, SpanKind, SpanOutcome, Timeline};
use dfl_workflows::engine::{run, RunConfig, RunResult};
use dfl_workflows::spec::{FileProduce, FileUse, TaskSpec, WorkflowSpec};

/// A chain workflow: task i reads task i-1's output (task 0 reads the
/// external input) and writes its own. Stages alternate so multiple stage
/// spans appear on the timeline.
fn chain(tasks: &[(u64, u64)]) -> WorkflowSpec {
    let mut w = WorkflowSpec::new("chain");
    w.input("f0", 4 << 20);
    for (i, &(compute_ms, out_mb)) in tasks.iter().enumerate() {
        w.task(
            TaskSpec::new(&format!("t-{i}"), "t", (i as u32 % 3) + 1)
                .read(FileUse::whole(&format!("f{i}")))
                .write(FileProduce::new(&format!("f{}", i + 1), out_mb << 20))
                .compute_ms(compute_ms),
        );
    }
    w
}

fn obs_run(spec: &WorkflowSpec, nodes: usize) -> RunResult {
    let mut cfg = RunConfig::default_gpu(nodes);
    cfg.obs = Some(ObsConfig::default());
    run(spec, &cfg).expect("fault-free run completes")
}

/// Sums flow-span durations grouped by their `meta.tag` label.
fn flow_sums(tl: &Timeline) -> BTreeMap<String, u64> {
    let mut sums = BTreeMap::new();
    for s in tl.spans().filter(|s| s.kind == SpanKind::Flow) {
        let tag = s.meta.tag.clone().expect("flow spans carry a tag");
        *sums.entry(tag).or_insert(0) += s.end_ns - s.start_ns;
    }
    sums
}

/// Flow-borne tags: everything the simulator routes through the flow
/// network (compute and metadata are accounted directly, never as flows).
const FLOW_TAGS: [FlowTag; 11] = [
    FlowTag::CacheL1,
    FlowTag::CacheL2,
    FlowTag::CacheL3,
    FlowTag::CacheL4,
    FlowTag::NetworkRead,
    FlowTag::LocalRead,
    FlowTag::SharedRead,
    FlowTag::Write,
    FlowTag::Stage,
    FlowTag::Recovery,
    FlowTag::CodeTransfer,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: on a fault-free run every flow contributes exactly one
    /// span whose duration the simulator also adds to the job breakdown, so
    /// per-tag sums must match to the nanosecond.
    #[test]
    fn flow_span_durations_match_breakdown_totals(
        tasks in prop::collection::vec((1u64..40, 1u64..12), 1..6),
        nodes in 1usize..4,
    ) {
        let r = obs_run(&chain(&tasks), nodes);
        let tl = r.timeline.as_ref().unwrap();
        let sums = flow_sums(tl);
        for tag in FLOW_TAGS {
            let expected = r.total_breakdown.get(tag);
            let actual = sums.get(tag.label()).copied().unwrap_or(0);
            prop_assert_eq!(
                actual, expected,
                "tag {:?}: timeline says {} ns, breakdown says {} ns", tag, actual, expected
            );
        }
        // And nothing else snuck in: every span tag maps to a known flow tag.
        for tag in sums.keys() {
            prop_assert!(
                FLOW_TAGS.iter().any(|t| t.label() == tag),
                "unknown flow tag {:?}", tag
            );
        }
    }

    /// Every span is well-formed and lies within the run: end ≥ start, and
    /// both ends inside [0, makespan] (stage spans round-trip through f64
    /// seconds, so allow a few ns of slack there).
    #[test]
    fn spans_are_ordered_and_within_makespan(
        tasks in prop::collection::vec((1u64..40, 1u64..12), 1..6),
        nodes in 1usize..4,
    ) {
        let r = obs_run(&chain(&tasks), nodes);
        let tl = r.timeline.as_ref().unwrap();
        prop_assert!(tl.end_ns > 0);
        for s in tl.spans() {
            prop_assert!(s.end_ns >= s.start_ns, "span {:?}", s);
            prop_assert!(s.end_ns <= tl.end_ns + 8, "span past makespan: {:?}", s);
            prop_assert_eq!(s.outcome, SpanOutcome::Ok, "fault-free run: {:?}", s);
        }
        for i in tl.instants() {
            prop_assert!(i.t_ns <= tl.end_ns);
        }
    }

    /// Job run spans nest inside their stage's span: a stage covers the
    /// first start through the last end of its tasks.
    #[test]
    fn job_spans_nest_under_stage_spans(
        tasks in prop::collection::vec((1u64..40, 1u64..12), 1..6),
        nodes in 1usize..4,
    ) {
        let spec = chain(&tasks);
        let r = obs_run(&spec, nodes);
        let tl = r.timeline.as_ref().unwrap();
        let stage_of: BTreeMap<&str, u32> =
            spec.tasks.iter().map(|t| (t.name.as_str(), t.stage)).collect();
        let stage_spans: BTreeMap<String, (u64, u64)> = tl
            .spans()
            .filter(|s| s.kind == SpanKind::Stage)
            .map(|s| (s.name.clone(), (s.start_ns, s.end_ns)))
            .collect();
        prop_assert!(!stage_spans.is_empty());
        let mut jobs_seen = 0;
        for s in tl.spans().filter(|s| s.kind == SpanKind::Run) {
            let stage = stage_of[s.name.as_str()];
            let &(lo, hi) = stage_spans
                .get(&format!("stage {stage}"))
                .expect("every populated stage has a span");
            // Stage bounds round-trip through f64 seconds: ±8 ns slack.
            prop_assert!(
                lo <= s.start_ns + 8 && s.end_ns <= hi + 8,
                "job {} [{}, {}] outside stage {} [{}, {}]",
                s.name, s.start_ns, s.end_ns, stage, lo, hi
            );
            jobs_seen += 1;
        }
        prop_assert_eq!(jobs_seen, spec.tasks.len());
    }

    /// Recording must not perturb the simulation: the same workflow with
    /// observability off produces the same makespan and measurements.
    #[test]
    fn recording_does_not_perturb_the_run(
        tasks in prop::collection::vec((1u64..40, 1u64..12), 1..5),
        nodes in 1usize..4,
    ) {
        let spec = chain(&tasks);
        let with_obs = obs_run(&spec, nodes);
        let without = run(&spec, &RunConfig::default_gpu(nodes)).unwrap();
        prop_assert_eq!(with_obs.makespan_s, without.makespan_s);
        prop_assert_eq!(
            with_obs.measurements.to_json().unwrap(),
            without.measurements.to_json().unwrap()
        );
    }
}
