//! Case-study shape assertions: the *orderings* the paper reports must hold
//! in this reproduction (we assert relations, not absolute numbers), on
//! reduced-scale instances so the suite stays fast.

use dfl_workflows::belle2::{self, Belle2Config, DataAccess, Scenario};
use dfl_workflows::ddmd::{self, DdmdConfig, Fig7Config};
use dfl_workflows::engine::run;
use dfl_workflows::genomes::{self, Fig6Config, GenomesConfig};

/// A moderate 1000 Genomes instance: big enough for tier effects to show.
fn genomes_cfg() -> GenomesConfig {
    GenomesConfig {
        chromosomes: 4,
        indiv_per_chr: 6,
        populations: 2,
        ..GenomesConfig::default()
    }
}

#[test]
fn fig6_ordering_staging_wins() {
    let spec = genomes::generate(&genomes_cfg());
    let t = |c: Fig6Config| run(&spec, &c.run_config()).unwrap().makespan_s;

    let bfs15 = t(Fig6Config::N15Bfs);
    let bfs10 = t(Fig6Config::N10Bfs);
    let shm = t(Fig6Config::N10BfsShm);
    let ssd = t(Fig6Config::N10BfsSsd);
    let shm_staged = t(Fig6Config::N10BfsShmStaging);
    let ssd_staged = t(Fig6Config::N10BfsSsdStaging);

    // Paper §6.2 orderings.
    assert!(bfs10 <= bfs15 * 1.01, "10 nodes not worse than 15: {bfs10} vs {bfs15}");
    assert!(shm < bfs10, "local intermediates beat shared: {shm} vs {bfs10}");
    assert!(shm <= ssd * 1.01, "RAM-disk ≥ SSD: {shm} vs {ssd}");
    assert!(shm_staged < shm, "input staging helps further: {shm_staged} vs {shm}");
    assert!(shm_staged <= ssd_staged * 1.01);
    // The headline: a large end-to-end factor (the full-scale Fig. 6 run
    // reaches ~11x; this reduced instance still shows a multiple).
    assert!(
        bfs15 / shm_staged > 2.5,
        "end-to-end speedup should be large: {:.1}x",
        bfs15 / shm_staged
    );
}

#[test]
fn fig7_ordering_shortened_wins() {
    let cfg = DdmdConfig { iterations: 3, ..DdmdConfig::default() };
    let t = |c: Fig7Config| {
        run(&ddmd::generate(&cfg, c.pipeline()), &c.run_config()).unwrap().makespan_s
    };
    let orig_nfs = t(Fig7Config::OriginalNfs);
    let orig_bfs = t(Fig7Config::OriginalBfs);
    let short_nfs = t(Fig7Config::ShortenedNfs);
    let short_bfs = t(Fig7Config::ShortenedBfs);
    let short_shm = t(Fig7Config::ShortenedBfsShm);

    assert!(orig_bfs < orig_nfs, "BeeGFS beats NFS in Original");
    assert!(short_nfs < orig_nfs, "Shortened beats Original on the same storage");
    assert!(short_bfs < short_nfs, "BeeGFS helps Shortened (paper +5.4%)");
    assert!(short_shm <= short_bfs * 1.001, "RAM-disk helps further (paper +9%)");
    let speedup = orig_nfs / short_shm;
    assert!(
        (1.4..4.0).contains(&speedup),
        "overall speedup in the paper's ballpark (1.9x): {speedup:.2}x"
    );
}

#[test]
fn belle2_caching_beats_ftp_by_a_large_factor() {
    // Reduced campaign (runtime); preserves WAN-vs-cache structure.
    let cfg = Belle2Config {
        tasks: 24,
        pool: 8,
        dataset_bytes: 256 << 20,
        datasets_per_task: 4,
        compute_ms: 5_000,
        ..Belle2Config::default()
    };
    let ftp = run(
        &belle2::generate(&cfg, DataAccess::FtpCopy),
        &belle2::run_config(&cfg, DataAccess::FtpCopy, 2),
    )
    .unwrap();
    let cached = run(
        &belle2::generate(&cfg, DataAccess::Cached),
        &belle2::run_config(&cfg, DataAccess::Cached, 2),
    )
    .unwrap();
    let speedup = ftp.makespan_s / cached.makespan_s;
    assert!(speedup > 2.0, "caching speedup: {speedup:.1}x");
}

#[test]
fn table3_scenario_ordering() {
    // Reduced replay campaign with a pool larger than would fit the scaled
    // caches' reach per node, preserving the scenario ordering.
    let cfg = Belle2Config {
        tasks: 32,
        pool: 64,
        dataset_bytes: 64 << 20,
        datasets_per_task: 8,
        read_fraction: 0.5,
        op_bytes: 4 << 20,
        compute_ms: 2_000,
        ..Belle2Config::default()
    };
    let t = |s: Scenario| belle2::run_replay(&cfg, &s.traces(&cfg), 4, false).makespan_s;
    let s1 = t(Scenario::S1);
    let s3 = t(Scenario::S3);
    let s5 = t(Scenario::S5);
    let s6 = t(Scenario::S6);
    let opt = belle2::run_replay(&cfg, &Scenario::S6.traces(&cfg), 4, true).makespan_s;

    assert!(s3 < s1, "ensembles help: {s3} vs {s1}");
    assert!(s5 < s3, "filters dominate: {s5} vs {s3}");
    assert!(s6 <= s5 * 1.05, "combination at least matches filters");
    assert!(opt < s6, "local-data optimal is the floor");
}
