//! Determinism: the whole stack (generators → simulator → monitor →
//! graph → analysis) must be bit-reproducible run-to-run, or measurement
//! comparisons across configurations would be meaningless.

use dfl_core::analysis::cost::CostModel;
use dfl_core::analysis::critical_path::critical_path;
use dfl_core::analysis::patterns::{analyze, AnalysisConfig};
use dfl_core::DflGraph;
use dfl_tests::{assert_same_measurements, quick_run};
use dfl_workflows::{belle2, ddmd, genomes};

#[test]
fn genomes_runs_identically_twice() {
    let spec = genomes::generate(&genomes::GenomesConfig::tiny());
    let a = quick_run(&spec, 3);
    let b = quick_run(&spec, 3);
    assert_eq!(a.makespan_s, b.makespan_s);
    assert_same_measurements(&a.measurements, &b.measurements);
}

#[test]
fn ddmd_runs_identically_twice() {
    let spec = ddmd::generate(&ddmd::DdmdConfig::tiny(), ddmd::Pipeline::Shortened);
    let a = quick_run(&spec, 2);
    let b = quick_run(&spec, 2);
    assert_eq!(a.makespan_s, b.makespan_s);
    assert_same_measurements(&a.measurements, &b.measurements);
}

#[test]
fn belle2_cached_run_is_deterministic() {
    let cfg = belle2::Belle2Config::tiny();
    let spec = belle2::generate(&cfg, belle2::DataAccess::Cached);
    let rc = belle2::run_config(&cfg, belle2::DataAccess::Cached, 2);
    let a = dfl_workflows::engine::run(&spec, &rc).unwrap();
    let b = dfl_workflows::engine::run(&spec, &rc).unwrap();
    assert_eq!(a.makespan_s, b.makespan_s);
    assert_same_measurements(&a.measurements, &b.measurements);
}

#[test]
fn analysis_is_deterministic_on_same_graph() {
    let spec = genomes::generate(&genomes::GenomesConfig::tiny());
    let r = quick_run(&spec, 2);
    let g = DflGraph::from_measurements(&r.measurements);

    let cp1 = critical_path(&g, &CostModel::Volume);
    let cp2 = critical_path(&g, &CostModel::Volume);
    assert_eq!(cp1.vertices, cp2.vertices);

    let cfg = AnalysisConfig::default();
    let a: Vec<String> = analyze(&g, &cfg).iter().map(|o| o.evidence.clone()).collect();
    let b: Vec<String> = analyze(&g, &cfg).iter().map(|o| o.evidence.clone()).collect();
    assert_eq!(a, b, "opportunity ordering stable");
}

#[test]
fn generator_outputs_are_deterministic() {
    let a = belle2::Belle2Config::default();
    for t in [0u32, 7, 239] {
        assert_eq!(a.draws_for(t), a.draws_for(t));
    }
    let s1 = belle2::Scenario::S1.traces(&belle2::Belle2Config::tiny());
    let s2 = belle2::Scenario::S1.traces(&belle2::Belle2Config::tiny());
    assert_eq!(s1.len(), s2.len());
    for (x, y) in s1.iter().zip(&s2) {
        assert_eq!(x.ops, y.ops);
    }
}
