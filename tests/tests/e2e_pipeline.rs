//! End-to-end integration: simulate each of the five workflows, build the
//! DFL graph from the collected measurements, and verify the paper's
//! signature structures appear.

use dfl_core::analysis::cost::CostModel;
use dfl_core::analysis::critical_path::critical_path;
use dfl_core::analysis::entities::{data_fan_outs, task_fan_ins};
use dfl_core::DflGraph;
use dfl_tests::quick_run;
use dfl_workflows::{belle2, ddmd, engine, genomes, montage, seismic};

#[test]
fn genomes_graph_structure() {
    let spec = genomes::generate(&genomes::GenomesConfig::tiny());
    let r = quick_run(&spec, 2);
    let g = DflGraph::from_measurements(&r.measurements);
    assert!(g.is_dag());

    // Data-parallel fan-out: each chromosome file feeds 4 indiv tasks, the
    // columns file feeds all 8.
    let chr1 = g.find_vertex("ALL.chr1.250000.vcf").expect("chr1 vertex");
    assert_eq!(g.out_degree(chr1), 4);
    let columns = g.find_vertex("columns.txt").expect("columns vertex");
    assert_eq!(g.out_degree(columns), 8);

    // merge is a task fan-in over the indiv outputs (+0 other inputs).
    let merge = g.find_vertex("merge-chr1").expect("merge vertex");
    assert_eq!(g.in_degree(merge), 4);

    // The merged archive is consumed by freq+mutat of both populations.
    let merged = g.find_vertex("chr1n.tar.gz").expect("merged vertex");
    assert_eq!(g.out_degree(merged), 4);
}

#[test]
fn genomes_template_collapses_instances() {
    let spec = genomes::generate(&genomes::GenomesConfig::tiny());
    let r = quick_run(&spec, 2);
    let g = DflGraph::from_measurements(&r.measurements);
    let t = g.to_template();
    // Logical tasks: staging? no staging here — indiv, merge, sift, freq, mutat.
    let logical_tasks: Vec<String> = t
        .graph
        .task_vertices()
        .map(|v| t.graph.vertex(v).name.clone())
        .collect();
    for expected in ["indiv", "merge", "sift", "freq", "mutat"] {
        assert!(
            logical_tasks.iter().any(|n| n == expected),
            "missing template task {expected}: {logical_tasks:?}"
        );
    }
    let indiv = t.graph.find_vertex("indiv").unwrap();
    assert_eq!(
        t.graph.vertex(indiv).props.as_task().unwrap().instances,
        8,
        "2 chromosomes × 4 indiv"
    );
}

#[test]
fn ddmd_graph_shows_reuse_chain() {
    let spec = ddmd::generate(&ddmd::DdmdConfig::tiny(), ddmd::Pipeline::Original);
    let r = quick_run(&spec, 2);
    let g = DflGraph::from_measurements(&r.measurements);

    // aggregate fans in from all sims of an iteration.
    let aggs = task_fan_ins(&g, 3);
    assert!(!aggs.is_empty(), "aggregate has fan-in 3");
    // The combined file fans out to train and lof.
    let combined = g.find_vertex("combined-it0.h5").unwrap();
    assert_eq!(g.out_degree(combined), 2, "one consumer edge each for train and lof");
    assert!(g.out_volume(combined) > g.in_volume(combined), "reuse signature");
}

#[test]
fn belle2_fan_out_over_shared_pool() {
    let cfg = belle2::Belle2Config::tiny();
    let spec = belle2::generate(&cfg, belle2::DataAccess::Cached);
    let rc = belle2::run_config(&cfg, belle2::DataAccess::Cached, 2);
    let r = engine::run(&spec, &rc).unwrap();
    let g = DflGraph::from_measurements(&r.measurements);
    let shared = data_fan_outs(&g, 2);
    assert!(!shared.is_empty(), "datasets shared across MC tasks");
}

#[test]
fn montage_and_seismic_critical_paths() {
    let r = quick_run(&montage::generate(&montage::MontageConfig::tiny()), 2);
    let g = DflGraph::from_measurements(&r.measurements);
    let cp = critical_path(&g, &CostModel::Volume);
    // Montage's volume path flows through the final mosaic.
    let names: Vec<&str> = cp.vertices.iter().map(|&v| g.vertex(v).name.as_str()).collect();
    assert!(names.contains(&"mosaic.fits"), "{names:?}");

    let r = quick_run(&seismic::generate(&seismic::SeismicConfig::tiny()), 2);
    let g = DflGraph::from_measurements(&r.measurements);
    let cp = critical_path(&g, &CostModel::TaskFanIn);
    assert!(cp.total_cost >= 2.0, "multi-stage aggregation joins");
}

#[test]
fn measurements_survive_json_round_trip_and_rebuild() {
    let spec = genomes::generate(&genomes::GenomesConfig::tiny());
    let r = quick_run(&spec, 2);
    let json = r.measurements.to_json().unwrap();
    let back = dfl_trace::MeasurementSet::from_json(&json).unwrap();
    let g1 = DflGraph::from_measurements(&r.measurements);
    let g2 = DflGraph::from_measurements(&back);
    assert_eq!(g1.vertex_count(), g2.vertex_count());
    assert_eq!(g1.edge_count(), g2.edge_count());
    let cp1 = critical_path(&g1, &CostModel::Volume);
    let cp2 = critical_path(&g2, &CostModel::Volume);
    assert_eq!(cp1.total_cost, cp2.total_cost);
}
