//! Differential property test for the incremental flow engine.
//!
//! Drives the incremental [`FlowNet`] and the naive full-recompute
//! reference model [`naive::NaiveFlowNet`] with the *same* randomized
//! sequence of starts, completions, and capacity changes, and asserts the
//! two stay observably identical after every operation — same active set,
//! same rates (bit-for-bit), same next-completion predictions, and, after
//! an independent drain of each engine, the same completion sequence and a
//! bit-identical makespan.

use dfl_iosim::breakdown::FlowTag;
use dfl_iosim::flow::{naive::NaiveFlowNet, FlowKey, FlowNet, FlowOwner, ResourceId};
use dfl_iosim::time::SimTime;
use proptest::prelude::*;

const CAPS: [f64; 5] = [10.0, 64.0, 100.0, 333.0, 1000.0];

fn owner(job: u32) -> FlowOwner {
    FlowOwner { job, tag: FlowTag::LocalRead, background: false }
}

fn build(n_res: usize) -> (FlowNet, NaiveFlowNet, Vec<ResourceId>) {
    let mut new = FlowNet::new();
    let mut old = NaiveFlowNet::new();
    let mut ids = Vec::new();
    for i in 0..n_res {
        let cap = CAPS[i % CAPS.len()];
        let a = new.add_resource(&format!("r{i}"), cap);
        let b = old.add_resource(&format!("r{i}"), cap);
        assert_eq!(a, b);
        ids.push(a);
    }
    (new, old, ids)
}

/// Nonempty path selected by the low bits of `bits`.
fn path_from_bits(ids: &[ResourceId], bits: u64) -> Vec<ResourceId> {
    let mut p: Vec<ResourceId> = ids
        .iter()
        .enumerate()
        .filter(|(i, _)| bits >> i & 1 == 1)
        .map(|(_, r)| *r)
        .collect();
    if p.is_empty() {
        p.push(ids[bits as usize % ids.len()]);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]
    #[test]
    fn incremental_engine_matches_naive_reference(
        n_res in 1usize..6,
        ops in prop::collection::vec(
            (0u8..3, 0u64..1u64 << 20, 0u64..1u64 << 20, 0u32..2_000_000_000),
            1..60,
        ),
    ) {
        let (mut new, mut old, ids) = build(n_res);
        let mut now = SimTime::ZERO;
        let mut started = 0u64;
        for &(kind, a, b, dt) in &ops {
            now = SimTime(now.0 + dt as u64);
            match kind {
                0 => {
                    let path = path_from_bits(&ids, a);
                    // Non-round byte counts exercise the f64 paths.
                    let bytes = 1.0 + b as f64 / 7.0;
                    let kn = new.start(now, &path, bytes, owner(started as u32));
                    let ko = old.start(now, &path, bytes, owner(started as u32));
                    prop_assert_eq!(kn, ko);
                    started += 1;
                }
                1 => {
                    let nn = new.next_completion();
                    prop_assert_eq!(nn, old.next_completion());
                    if let Some((t, k)) = nn {
                        let (_, elapsed_new, _) = new.complete(t, k);
                        let (_, elapsed_old) = old.complete(t, k);
                        prop_assert_eq!(elapsed_new, elapsed_old);
                        now = SimTime(now.0.max(t.0));
                    }
                }
                _ => {
                    let id = ids[a as usize % ids.len()];
                    let cap = 0.5 + (b % 4096) as f64 / 3.0;
                    new.set_capacity(now, id, cap);
                    old.set_capacity(now, id, cap);
                }
            }
            prop_assert_eq!(new.active_count(), old.active_count());
            prop_assert_eq!(new.next_completion(), old.next_completion());
            for k in 0..started {
                match (new.rate_of(FlowKey(k)), old.rate_of(FlowKey(k))) {
                    (Some(x), Some(y)) => prop_assert_eq!(x.to_bits(), y.to_bits()),
                    (None, None) => {}
                    other => prop_assert!(false, "liveness mismatch for flow {}: {:?}", k, other),
                }
            }
        }
        // Drain each engine independently; sequences (and therefore the
        // makespan, the last completion time) must be bit-identical.
        let mut seq_new: Vec<(SimTime, FlowKey)> = Vec::new();
        while let Some((t, k)) = new.next_completion() {
            new.complete(t, k);
            seq_new.push((t, k));
        }
        let mut seq_old: Vec<(SimTime, FlowKey)> = Vec::new();
        while let Some((t, k)) = old.next_completion() {
            old.complete(t, k);
            seq_old.push((t, k));
        }
        prop_assert_eq!(seq_new, seq_old);
        prop_assert_eq!(new.active_count(), 0);
        prop_assert_eq!(old.active_count(), 0);
    }
}
