//! Property tests for the buffered C-stream layer: whatever mixture of
//! buffered operations a program performs, the descriptor-level totals the
//! monitor records must match the logical bytes moved, and buffering must
//! never *increase* the operation count.

use proptest::prelude::*;

use dfl_trace::handle::SeekFrom;
use dfl_trace::{CStream, IoTiming, Monitor, MonitorConfig, OpenMode};

#[derive(Debug, Clone)]
enum Op {
    Read(u16),
    Write(u16),
    SeekStart(u16),
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u16..5000).prop_map(Op::Read),
        (1u16..5000).prop_map(Op::Write),
        (0u16..8000).prop_map(Op::SeekStart),
        Just(Op::Flush),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Logical write bytes equal descriptor-level write bytes after close,
    /// regardless of buffering, seeks, or interleaving.
    #[test]
    fn stream_totals_match(ops in prop::collection::vec(op_strategy(), 1..40), buf in 0u64..4096) {
        let m = Monitor::new(MonitorConfig::default());
        let ctx = m.begin_task("t-0", 0);
        let mut s = CStream::with_buffer(&ctx, "file", OpenMode::ReadWrite, Some(8192), 0, buf);

        let mut logical_written = 0u64;
        let mut logical_read = 0u64;
        let mut clock = 1u64;
        for op in &ops {
            let t = IoTiming::new(clock, 1);
            clock += 10;
            match op {
                Op::Read(n) => logical_read += s.read(u64::from(*n), t).unwrap(),
                Op::Write(n) => {
                    s.write(u64::from(*n), t).unwrap();
                    logical_written += u64::from(*n);
                }
                Op::SeekStart(o) => {
                    s.seek(SeekFrom::Start(u64::from(*o)), t).unwrap();
                }
                Op::Flush => s.flush(t).unwrap(),
            }
        }
        s.close(clock).unwrap();
        ctx.finish(clock + 1);

        let set = m.snapshot();
        let rec = &set.records[0];
        prop_assert_eq!(rec.bytes_written, logical_written);
        // Reads through the buffer may OVER-read (prefetch into the buffer),
        // never under-read.
        prop_assert!(rec.bytes_read >= logical_read,
            "descriptor reads {} < logical {}", rec.bytes_read, logical_read);
        // And the over-read is bounded by one buffer per fill.
        let fills = rec.read_ops;
        prop_assert!(rec.bytes_read <= logical_read + fills * buf.max(1));
    }

    /// A buffered stream never issues more descriptor writes than an
    /// unbuffered one for the same sequential append workload.
    #[test]
    fn buffering_reduces_ops(sizes in prop::collection::vec(1u64..3000, 1..30)) {
        let run = |buf: u64| {
            let m = Monitor::new(MonitorConfig::default());
            let ctx = m.begin_task("t-0", 0);
            let mut s = CStream::with_buffer(&ctx, "out", OpenMode::Write, None, 0, buf);
            for (i, &n) in sizes.iter().enumerate() {
                s.write(n, IoTiming::new(i as u64, 1)).unwrap();
            }
            s.close(1_000).unwrap();
            ctx.finish(1_001);
            let set = m.snapshot();
            (set.records[0].write_ops, set.records[0].bytes_written)
        };
        let (unbuffered_ops, ub) = run(0);
        let (buffered_ops, bb) = run(8192);
        prop_assert_eq!(ub, bb, "same bytes either way");
        prop_assert!(buffered_ops <= unbuffered_ops,
            "buffered {} > unbuffered {}", buffered_ops, unbuffered_ops);
    }
}
