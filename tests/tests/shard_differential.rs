//! Shard-count invariance: the differential harness for the sharded event
//! core.
//!
//! The sharded dispatcher merges per-shard heaps in canonical `(t, seq)`
//! order, so every observable — `RunResult`, `Breakdown`, measurement JSON,
//! and both timeline export formats — must be *byte-identical* at any shard
//! count. This suite proves it by running every built-in workflow (genomes,
//! ddmd, belle2, montage, seismic) across shards ∈ {1, 2, 4, 8}, under
//! clean, fault-injected, and silent-corruption plans, plus chaos
//! crash+resume runs whose kill points land mid-window and whose resumes
//! deliberately switch shard counts.
//!
//! Honours `DFL_SHARD_SEEDS` (comma-separated, default "1,42,20260806") so
//! CI can sweep the fault/corruption legs in a matrix.

use std::collections::BTreeSet;
use std::path::PathBuf;

use proptest::prelude::*;

use dfl_iosim::fault::unit_hash;
use dfl_iosim::{FaultPlan, SimError};
use dfl_workflows::checkpoint::load_latest;
use dfl_workflows::engine::{resume_from, resume_latest, run, RunConfig, RunResult};
use dfl_workflows::spec::WorkflowSpec;
use dfl_workflows::{
    belle2, ddmd, genomes, montage, seismic, CheckpointConfig, CheckpointError, EngineError,
    VerifyPolicy,
};

/// Shard counts every scenario is swept over (1 is the oracle).
const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 8];
/// Node count — at least [`SHARD_COUNTS`]'s maximum so every plan fits.
const NODES: usize = 8;

/// One built-in workflow at tiny scale with its canonical run config.
fn builtin(which: usize) -> (&'static str, WorkflowSpec, RunConfig) {
    match which {
        0 => {
            let c = genomes::GenomesConfig::tiny();
            ("genomes", genomes::generate(&c), RunConfig::default_gpu(NODES))
        }
        1 => {
            let c = ddmd::DdmdConfig::tiny();
            (
                "ddmd",
                ddmd::generate(&c, ddmd::Pipeline::Original),
                RunConfig::default_gpu(NODES),
            )
        }
        2 => {
            let c = belle2::Belle2Config::tiny();
            let rc = belle2::run_config(&c, belle2::DataAccess::Cached, NODES);
            ("belle2", belle2::generate(&c, belle2::DataAccess::Cached), rc)
        }
        3 => {
            let c = montage::MontageConfig::tiny();
            ("montage", montage::generate(&c), RunConfig::default_gpu(NODES))
        }
        _ => {
            let c = seismic::SeismicConfig::tiny();
            ("seismic", seismic::generate(&c), RunConfig::default_gpu(NODES))
        }
    }
}

/// Everything a consumer can observe about a finished run. Floats travel as
/// their `Debug` rendering (round-trip exact in Rust), timelines as the
/// literal bytes of both export formats, measurements as canonical JSON —
/// equality here *is* byte-identity.
type Outcome = Box<(String, Vec<(String, u64, u64, bool)>, String, String, String, String, u64)>;

fn outcome(r: &RunResult) -> Outcome {
    let tl = r.timeline.as_ref().expect("obs enabled");
    Box::new((
        format!("{:.9}/{:?}/{:?}", r.makespan_s, r.stage_spans, r.total_breakdown),
        r.reports.iter().map(|j| (j.name.clone(), j.start_ns, j.end_ns, j.failed)).collect(),
        format!("{:?}", r.failure),
        r.measurements.to_json().expect("measurements serialize"),
        dfl_obs::chrome_trace(tl),
        dfl_obs::jsonl(tl),
        r.events_dispatched,
    ))
}

/// Runs `spec` under `cfg` at shard count `k` (observability forced on so
/// timelines are comparable); errors are folded into the outcome so a
/// deterministic failure must also be byte-identical across shard counts.
fn run_at(spec: &WorkflowSpec, cfg: &RunConfig, k: u32) -> Result<Outcome, String> {
    let mut cfg = cfg.clone();
    cfg.shards = k;
    if cfg.obs.is_none() {
        cfg.obs = Some(dfl_obs::ObsConfig::sampled(20_000_000));
    }
    run(spec, &cfg).map(|r| outcome(&r)).map_err(|e| e.to_string())
}

#[test]
fn builtin_workflows_byte_identical_across_shard_counts() {
    for which in 0..5 {
        let (name, spec, cfg) = builtin(which);
        let oracle = run_at(&spec, &cfg, 1);
        for &k in &SHARD_COUNTS[1..] {
            assert_eq!(run_at(&spec, &cfg, k), oracle, "{name}: shards={k} diverged from shards=1");
        }
    }
}

#[test]
fn fault_plans_shard_invariant_across_seeds() {
    for seed in dfl_tests::seed_matrix("DFL_SHARD_SEEDS", "1,42,20260806") {
        for which in 0..5 {
            let (name, spec, mut cfg) = builtin(which);
            cfg.faults = FaultPlan::seeded(seed).crash(1, 50_000_000, 30_000_000).io_errors(0.004);
            cfg.retry.max_attempts = 30;
            let oracle = run_at(&spec, &cfg, 1);
            for &k in &SHARD_COUNTS[1..] {
                assert_eq!(
                    run_at(&spec, &cfg, k),
                    oracle,
                    "{name} seed {seed}: faulted run diverged at shards={k}"
                );
            }
        }
    }
}

#[test]
fn corruption_plans_shard_invariant_across_seeds() {
    for seed in dfl_tests::seed_matrix("DFL_SHARD_SEEDS", "1,42,20260806") {
        for which in 0..5 {
            let (name, spec, mut cfg) = builtin(which);
            cfg.faults = FaultPlan::seeded(seed).corrupt_writes(0.01);
            cfg.verify = VerifyPolicy::OnRead;
            cfg.retry.max_attempts = 30;
            let oracle = run_at(&spec, &cfg, 1);
            for &k in &SHARD_COUNTS[1..] {
                assert_eq!(
                    run_at(&spec, &cfg, k),
                    oracle,
                    "{name} seed {seed}: corruption run diverged at shards={k}"
                );
            }
        }
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dfl-shard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Checkpointing config for the crash+resume leg.
fn ckpt_cfg(base: &RunConfig, dir: &std::path::Path) -> RunConfig {
    let mut cfg = base.clone();
    cfg.obs = Some(dfl_obs::ObsConfig::sampled(20_000_000));
    cfg.checkpoint = Some(CheckpointConfig::to_dir(dir).every_sim_ns(5_000_000).every_stages(1));
    cfg
}

/// Seeded kill points strictly inside the dispatch range. Dispatch windows
/// are maximal same-shard runs, so interior points land mid-window.
fn kill_points(seed: u64, total_events: u64) -> Vec<u64> {
    assert!(total_events > 4, "golden run too short to crash inside");
    let mut pts: BTreeSet<u64> = BTreeSet::new();
    let mut i = 0u64;
    while pts.len() < 3 && i < 64 {
        let f = unit_hash(seed ^ 0x5aad_dead_beef, i, total_events);
        pts.insert((1 + (f * (total_events - 2) as f64) as u64).min(total_events - 1));
        i += 1;
    }
    pts.into_iter().collect()
}

/// Kills the coordinator at each point in turn, resuming from the latest
/// manifest under a rotating shard count — every resume may restore a
/// snapshot written at a *different* count.
fn crash_resume_rotating(
    spec: &WorkflowSpec,
    cfg: &RunConfig,
    points: &[u64],
    counts: &[u32],
) -> (RunResult, usize) {
    let mut kills = 0usize;
    let mut armed = cfg.clone();
    armed.shards = counts[0];
    armed.faults = armed.faults.chaos_crash(points[0]);
    let mut res = run(spec, &armed).map_err(|e| e.to_string());
    loop {
        match res {
            Ok(r) => return (r, kills),
            Err(msg) => {
                assert!(msg.contains("chaos"), "only the planned kill may fail the run: {msg}");
                kills += 1;
                let mut next = cfg.clone();
                next.shards = counts[kills % counts.len()];
                if kills < points.len() {
                    next.faults = next.faults.chaos_crash(points[kills]);
                }
                res = resume_latest(spec, &next).map_err(|e| e.to_string());
            }
        }
    }
}

/// Crash+resume at mid-window kill points, resuming under rotating shard
/// counts — the final answer must equal the uninterrupted single-shard
/// golden run byte for byte.
#[test]
fn crash_resume_mid_window_rotating_shard_counts_matches_golden() {
    for seed in dfl_tests::seed_matrix("DFL_SHARD_SEEDS", "1,42,20260806") {
        let (_, spec, base) = builtin(0);
        let golden_cfg = ckpt_cfg(&base, &fresh_dir(&format!("golden-{seed}")));
        let golden = run(&spec, &golden_cfg).expect("golden run completes");
        let golden_out = outcome(&golden);
        let pts = kill_points(seed, golden.events_dispatched);
        assert!(pts.len() >= 3, "seed {seed}: {pts:?}");

        let cfg = ckpt_cfg(&base, &fresh_dir(&format!("rot-{seed}")));
        let (r, kills) = crash_resume_rotating(&spec, &cfg, &pts, &[4, 2, 8, 1]);
        assert!(kills >= 1, "seed {seed}: at least one kill must fire");
        assert_eq!(outcome(&r), golden_out, "seed {seed}: crash+resume diverged from golden");
    }
}

/// Regression: a manifest embedding a snapshot from an older
/// `SNAPSHOT_VERSION` must be refused with a typed error, not misread.
#[test]
fn resume_rejects_old_snapshot_version() {
    let (_, spec, base) = builtin(0);
    let dir = fresh_dir("oldsnap");
    let cfg = ckpt_cfg(&base, &dir);
    run(&spec, &cfg).expect("checkpointed run completes");
    let mut manifest = load_latest(&dir).expect("manifest on disk");
    manifest.sim.version -= 1;
    match resume_from(&spec, &cfg, manifest) {
        Err(EngineError::Sim(SimError::Snapshot(msg))) => {
            assert!(msg.contains("version"), "{msg}");
        }
        other => panic!("expected typed snapshot-version rejection, got {other:?}"),
    }
}

/// Regression: a manifest from an older `MANIFEST_VERSION` is refused
/// before its payload is interpreted.
#[test]
fn resume_rejects_old_manifest_version() {
    let (_, spec, base) = builtin(0);
    let dir = fresh_dir("oldmanifest");
    let cfg = ckpt_cfg(&base, &dir);
    run(&spec, &cfg).expect("checkpointed run completes");
    let mut manifest = load_latest(&dir).expect("manifest on disk");
    manifest.version = 2;
    match resume_from(&spec, &cfg, manifest) {
        Err(EngineError::Checkpoint(CheckpointError::VersionMismatch { found: 2, .. })) => {}
        other => panic!("expected typed manifest-version rejection, got {other:?}"),
    }
}

/// Regression: resuming under a shard count the cluster cannot host fails
/// with a typed error (never a remap to garbage); a count that *does* fit
/// remaps deterministically (covered by the rotating crash+resume test).
#[test]
fn resume_rejects_unsatisfiable_shard_count() {
    let (_, spec, base) = builtin(0);
    let dir = fresh_dir("badshards");
    let cfg = ckpt_cfg(&base, &dir);
    run(&spec, &cfg).expect("checkpointed run completes");
    let manifest = load_latest(&dir).expect("manifest on disk");
    let mut bad = cfg.clone();
    bad.shards = NODES as u32 + 1;
    match resume_from(&spec, &bad, manifest) {
        Err(EngineError::InvalidSpec(msg)) => {
            assert!(msg.contains("invalid shard count"), "{msg}");
        }
        other => panic!("expected typed shard-count rejection, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// Randomized sweep: any workflow, any shard count in range, any fault
    /// seed — `shards=k` must match the `shards=1` oracle byte for byte.
    #[test]
    fn random_workflow_seed_and_shards_match_single(
        which in 0usize..5,
        k in 2u32..9,
        seed in 1u64..1_000_000,
        faulty in 0u8..2,
    ) {
        let (name, spec, mut cfg) = builtin(which);
        if faulty == 1 {
            cfg.faults = FaultPlan::seeded(seed).io_errors(0.004);
            cfg.retry.max_attempts = 30;
        }
        prop_assert_eq!(
            run_at(&spec, &cfg, k),
            run_at(&spec, &cfg, 1),
            "{} seed {} shards {} diverged", name, seed, k
        );
    }
}
