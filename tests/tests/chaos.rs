//! Deterministic chaos (DST) harness: crash-kill the coordinator at seeded
//! dispatch indices, resume from the latest on-disk checkpoint manifest,
//! and require the final outcome — makespan, per-job reports, failure
//! report, and the *exported timeline bytes* — to be identical to the
//! uninterrupted golden run with the same checkpoint cadence.
//!
//! This is the FoundationDB-style argument applied to the workflow engine:
//! the simulator is deterministic and checkpoints are crash-consistent, so
//! "kill anywhere, resume from disk" is required to be a no-op on the final
//! answer, not merely "close enough".
//!
//! Honours `DFL_CHAOS_SEEDS` (comma-separated, default eight seeds) so CI
//! can sweep seeds in a matrix.

use std::collections::BTreeSet;
use std::path::PathBuf;

use proptest::prelude::*;

use dfl_iosim::fault::unit_hash;
use dfl_iosim::{FaultPlan, TierKind};
use dfl_workflows::checkpoint::{load_latest, load_manifest, latest_manifest, CheckpointConfig};
use dfl_workflows::engine::{resume_from, resume_latest, run, Placement, RunConfig, RunResult, Staging};
use dfl_workflows::spec::{FileProduce, FileUse, TaskSpec, WorkflowSpec};
use dfl_workflows::{CheckpointError, EngineError};

/// Three stages with cross-node data dependencies and enough compute that
/// crash points land mid-stage: two producers (one per node), a consumer
/// joining both, and a final reducer.
fn workload() -> WorkflowSpec {
    let mut w = WorkflowSpec::new("chaos");
    w.input("in.dat", 8 << 20);
    w.task(
        TaskSpec::new("prod-0", "prod", 1)
            .read(FileUse::whole("in.dat"))
            .write(FileProduce::new("m0.dat", 16 << 20))
            .compute_ms(40),
    );
    w.task(
        TaskSpec::new("prod-1", "prod", 1)
            .read(FileUse::whole("in.dat"))
            .write(FileProduce::new("m1.dat", 16 << 20))
            .compute_ms(40),
    );
    w.task(
        TaskSpec::new("cons-0", "cons", 2)
            .read(FileUse::whole("m0.dat"))
            .read(FileUse::whole("m1.dat"))
            .write(FileProduce::new("join.dat", 8 << 20))
            .compute_ms(120),
    );
    w.task(
        TaskSpec::new("reduce-0", "reduce", 3)
            .read(FileUse::whole("join.dat"))
            .write(FileProduce::new("out.dat", 2 << 20))
            .compute_ms(60),
    );
    w
}

/// Node faults + observability + a full checkpoint policy (time cadence,
/// stage boundaries, incidents) writing into `dir`.
fn chaos_cfg(seed: u64, dir: &std::path::Path) -> RunConfig {
    let mut cfg = RunConfig::default_gpu(2);
    cfg.shards = dfl_tests::env_shards_for(2);
    cfg.placement = Placement::RoundRobin;
    cfg.staging = Staging::local_intermediates(TierKind::Beegfs, TierKind::Ramdisk);
    cfg.faults = FaultPlan::seeded(seed).crash(0, 250_000_000, 80_000_000).io_errors(0.005);
    cfg.retry.max_attempts = 30;
    cfg.obs = Some(dfl_obs::ObsConfig::sampled(20_000_000));
    cfg.checkpoint = Some(
        CheckpointConfig::to_dir(dir)
            .every_sim_ns(60_000_000)
            .every_stages(1)
            .on_incident(),
    );
    cfg
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dfl-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Everything a consumer can observe about a finished run, with timeline
/// compared through both export formats' literal bytes.
type Outcome = (String, Vec<(String, u64, u64, bool)>, String, String, String, u64);

fn outcome(r: &RunResult) -> Outcome {
    let tl = r.timeline.as_ref().expect("obs enabled");
    (
        format!("{:.9}/{:?}", r.makespan_s, r.stage_spans),
        r.reports.iter().map(|j| (j.name.clone(), j.start_ns, j.end_ns, j.failed)).collect(),
        format!("{:?}", r.failure),
        dfl_obs::chrome_trace(tl),
        dfl_obs::jsonl(tl),
        r.events_dispatched,
    )
}

/// At least three distinct seeded crash points strictly inside the golden
/// run's dispatch range, ascending.
fn crash_points(seed: u64, total_events: u64) -> Vec<u64> {
    assert!(total_events > 4, "golden run too short to crash inside");
    let mut pts: BTreeSet<u64> = BTreeSet::new();
    let mut i = 0u64;
    while pts.len() < 3 && i < 64 {
        let f = unit_hash(seed ^ 0xc4a0_5eed, i, total_events);
        pts.insert((1 + (f * (total_events - 2) as f64) as u64).min(total_events - 1));
        i += 1;
    }
    pts.into_iter().collect()
}

/// Runs the workload, killing the coordinator at each point in `points` in
/// turn (each kill resumes a *fresh* engine from the latest manifest on
/// disk, exactly as an external supervisor would) until it completes.
/// Returns the final result plus how many kills actually fired.
fn crash_resume_run(spec: &WorkflowSpec, cfg: &RunConfig, points: &[u64]) -> (RunResult, usize) {
    let mut kills = 0;
    let mut armed = cfg.clone();
    armed.faults = armed.faults.chaos_crash(points[0]);
    let mut res: Result<RunResult, String> =
        run(spec, &armed).map_err(|e| e.to_string());
    loop {
        match res {
            Ok(r) => return (r, kills),
            Err(msg) => {
                assert!(
                    msg.contains("chaos"),
                    "only the planned chaos kill may fail the run: {msg}"
                );
                kills += 1;
                let mut next = cfg.clone();
                if kills < points.len() {
                    next.faults = next.faults.chaos_crash(points[kills]);
                }
                res = resume_latest(spec, &next).map_err(|e| e.to_string());
            }
        }
    }
}

/// The tentpole acceptance test: for every seed, ≥3 seeded crash points,
/// each crash resumed from disk, final outcome byte-identical to golden.
#[test]
fn chaos_crash_resume_matches_golden_across_seeds() {
    for seed in dfl_tests::seed_matrix("DFL_CHAOS_SEEDS", "1,2,3,7,11,42,1234,20260806") {
        let dir = fresh_dir(&format!("seed{seed}"));
        let spec = workload();
        let cfg = chaos_cfg(seed, &dir);

        let golden = run(&spec, &cfg).expect("golden run completes");
        let golden_out = outcome(&golden);
        let pts = crash_points(seed, golden.events_dispatched);
        assert!(pts.len() >= 3, "seed {seed}: {pts:?}");

        // Every crash point individually: kill once, resume once.
        for &at in &pts {
            let _ = std::fs::remove_dir_all(&dir);
            let (r, kills) = crash_resume_run(&spec, &cfg, &[at]);
            assert_eq!(kills, 1, "seed {seed}: kill at {at} must fire");
            assert_eq!(golden_out, outcome(&r), "seed {seed}, crash at {at}");
        }

        // And the full gauntlet: all crash points in one lifetime,
        // resuming after each kill.
        let _ = std::fs::remove_dir_all(&dir);
        let (r, kills) = crash_resume_run(&spec, &cfg, &pts);
        assert!(kills >= 1, "seed {seed}: at least the first kill fires");
        assert_eq!(golden_out, outcome(&r), "seed {seed}, gauntlet {pts:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A manifest from a different `(spec, config)` pair is refused with a
/// typed error — never resumed into a silently wrong answer.
#[test]
fn resume_refuses_mismatched_config_hash() {
    let dir = fresh_dir("hash");
    let spec = workload();
    let cfg = chaos_cfg(5, &dir);
    run(&spec, &cfg).unwrap();

    let manifest = load_latest(&dir).unwrap();
    let mut drifted = cfg.clone();
    drifted.staging = Staging::all_shared(TierKind::Beegfs);
    match resume_from(&spec, &drifted, manifest) {
        Err(EngineError::Checkpoint(CheckpointError::HashMismatch { manifest, config })) => {
            assert_ne!(manifest, config);
        }
        other => panic!("expected HashMismatch, got {:?}", other.map(|r| r.makespan_s)),
    }

    // Spec drift is caught too, even with the original config.
    let manifest = load_latest(&dir).unwrap();
    let mut spec2 = workload();
    spec2.input("extra.dat", 1 << 20);
    match resume_from(&spec2, &cfg, manifest) {
        Err(EngineError::Checkpoint(CheckpointError::HashMismatch { .. })) => {}
        other => panic!("expected HashMismatch, got {:?}", other.map(|r| r.makespan_s)),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// On-disk version tampering is rejected before the payload is decoded.
#[test]
fn manifest_version_gate_rejects_future_versions() {
    let dir = fresh_dir("version");
    let spec = workload();
    let cfg = chaos_cfg(6, &dir);
    run(&spec, &cfg).unwrap();

    let path = latest_manifest(&dir).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.starts_with("{\"version\":3,"), "manifest leads with its version");
    std::fs::write(&path, text.replacen("{\"version\":3,", "{\"version\":42,", 1)).unwrap();
    match load_manifest(&path) {
        Err(CheckpointError::VersionMismatch { found: 42, expected: 3 }) => {}
        other => panic!("expected VersionMismatch, got {:?}", other.map(|m| m.seq)),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Checkpoint spans and counters ride the timeline: the golden run records
/// one zero-duration span per manifest written, and a resumed run carries
/// the pre-crash spans from the snapshot rather than re-recording them.
#[test]
fn checkpoint_spans_and_metrics_are_recorded_once() {
    let dir = fresh_dir("spans");
    let spec = workload();
    let cfg = chaos_cfg(8, &dir);
    let golden = run(&spec, &cfg).unwrap();
    let tl = golden.timeline.as_ref().unwrap();

    let manifests = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref().unwrap().file_name().to_string_lossy().starts_with("manifest-")
        })
        .count();
    let spans: Vec<String> = tl
        .spans()
        .filter(|s| s.kind == dfl_obs::SpanKind::Checkpoint)
        .map(|s| s.name.clone())
        .collect();
    assert_eq!(spans.len(), manifests, "one span per manifest: {spans:?}");
    assert!(spans.iter().any(|s| s == "checkpoint-0"), "{spans:?}");
    assert_eq!(
        tl.metrics.counter("checkpoint_stalls"),
        manifests as u64,
        "stall counter counts manifests"
    );
    assert!(tl.metrics.counter("checkpoint_bytes") > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Crash anywhere: an arbitrary seed and an arbitrary kill fraction of
    /// the golden dispatch count still resumes to the golden outcome.
    #[test]
    fn any_crash_point_resumes_to_golden(seed in 0u64..1_000_000, percent in 1u64..100) {
        let dir = fresh_dir(&format!("prop-{seed}-{percent}"));
        let spec = workload();
        let cfg = chaos_cfg(seed, &dir);
        let golden = run(&spec, &cfg).expect("golden run completes");
        let golden_out = outcome(&golden);

        let at = 1 + percent * (golden.events_dispatched - 2) / 100;
        let _ = std::fs::remove_dir_all(&dir);
        let (r, kills) = crash_resume_run(&spec, &cfg, &[at]);
        prop_assert_eq!(kills, 1);
        let out = outcome(&r);
        prop_assert_eq!(&golden_out.0, &out.0);
        prop_assert_eq!(&golden_out.1, &out.1);
        prop_assert_eq!(&golden_out.2, &out.2);
        prop_assert_eq!(&golden_out.3, &out.3);
        prop_assert_eq!(&golden_out.4, &out.4);
        prop_assert_eq!(golden_out.5, out.5);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
