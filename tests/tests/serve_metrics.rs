//! Observability suite for the `datalife serve` daemon: the typed
//! `metrics` reply, the Prometheus text-exposition page, wall-clock
//! job-lifecycle tracing (`trace`), shed replies with back-off hints, the
//! edge-triggered health watchdogs — and the rule that underwrites all of
//! it: wall-clock instrumentation must never perturb the deterministic
//! sim results (proven here byte-for-byte).

use std::path::PathBuf;

use dfl_serve::{Daemon, HealthKind, Request, ServeConfig};
use serde::Value;

fn state_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dfl-serve-mx-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn daemon(dir: &PathBuf, tweak: impl FnOnce(&mut ServeConfig)) -> Daemon {
    let mut cfg = ServeConfig::new(dir);
    // Tests drive the watchdogs deterministically via `health_tick`.
    cfg.health_poll_ms = 0;
    tweak(&mut cfg);
    Daemon::start(cfg).expect("daemon starts")
}

fn submit(workflow: &str, tweak: impl FnOnce(&mut Request)) -> String {
    let mut r = Request::new("submit");
    r.workflow = Some(workflow.into());
    tweak(&mut r);
    r.to_line()
}

fn v(line: &str) -> Value {
    serde_json::from_str(line).unwrap_or_else(|e| panic!("bad response line {line:?}: {e}"))
}

fn accept(d: &Daemon, line: &str) -> u64 {
    let reply = v(&d.request(line)[0]);
    assert_eq!(reply["type"].as_str(), Some("accepted"), "{reply:?}");
    reply["job"].as_u64().unwrap()
}

fn run_to_end(d: &Daemon, job: u64) -> String {
    let mut r = Request::new("stream");
    r.job = Some(job);
    let lines = d.request(&r.to_line());
    v(lines.last().expect("terminal line"))["state"].as_str().unwrap().to_owned()
}

fn metrics(d: &Daemon) -> Value {
    v(&d.request(r#"{"op":"metrics"}"#)[0])
}

#[test]
fn metrics_reply_carries_the_full_typed_schema() {
    let dir = state_dir("schema");
    let d = daemon(&dir, |c| c.workers = 1);
    let job = accept(&d, &submit("smoke", |r| r.tenant = Some("acme".into())));
    assert_eq!(run_to_end(&d, job), "done");

    let m = metrics(&d);
    assert_eq!(m["type"].as_str(), Some("metrics"));
    assert_eq!(m["workers"].as_u64(), Some(1));
    assert_eq!(m["queue_depth"].as_u64(), Some(0));
    assert_eq!(m["draining"].as_bool(), Some(false));
    assert!(m.get("uptime_ms").and_then(|x| x.as_u64()).is_some());

    // Per-tenant scheduler accounting.
    let tenants = m["tenants"].as_array().expect("tenants array");
    let acme = tenants
        .iter()
        .find(|t| t["name"].as_str() == Some("acme"))
        .expect("tenant acme listed");
    assert_eq!(acme["dispatched"].as_u64(), Some(1));
    assert_eq!(acme["queued"].as_u64(), Some(0));

    // Latency quantiles from the wall-clock histograms: exactly one
    // submit and one finished job were observed.
    for key in ["submit_us", "job_wall_ms"] {
        let h = &m["latency"][key];
        assert_eq!(h["count"].as_u64(), Some(1), "{key}: {h:?}");
        assert!(h["p99"].as_f64().unwrap() >= h["p50"].as_f64().unwrap(), "{key}");
        assert!(h["p50"].as_f64().unwrap() > 0.0, "{key}");
    }
    // Every ledger write was timed: accept + running + done = 3 commits.
    assert_eq!(m["latency"]["ledger_commit_us"]["count"].as_u64(), Some(3));

    // Raw counters/gauges ride along; durable-state gauges agree with the
    // one job that ran.
    assert_eq!(m["counters"]["serve_accepted"].as_u64(), Some(1));
    assert_eq!(m["counters"]["serve_completed"].as_u64(), Some(1));
    assert_eq!(m["gauges"]["serve_jobs_total"].as_f64(), Some(1.0));
    assert_eq!(m["gauges"]["serve_jobs_completed"].as_f64(), Some(1.0));
    assert_eq!(m["diagnoses"].as_array().map(Vec::len), Some(0));
    d.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Validates Prometheus text exposition 0.0.4 shape: every sample's base
/// name is typed exactly once before use, values parse, histogram buckets
/// are cumulative and capped by `_count`, labels stay inside one brace
/// pair.
fn validate_exposition(page: &str) {
    let mut typed: Vec<(String, String)> = Vec::new();
    let mut last_bucket: Option<(String, f64)> = None;
    for line in page.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().expect("TYPE name").to_owned();
            let kind = it.next().expect("TYPE kind").to_owned();
            assert!(matches!(kind.as_str(), "counter" | "gauge" | "histogram"), "{line}");
            assert!(!typed.iter().any(|(n, _)| *n == name), "duplicate TYPE for {name}");
            typed.push((name, kind));
            continue;
        }
        assert!(!line.is_empty(), "exposition has no blank lines");
        let (name_part, value) = line.rsplit_once(' ').expect("sample line has a value");
        let value: f64 = if value == "+Inf" {
            f64::INFINITY
        } else {
            value.parse().unwrap_or_else(|e| panic!("bad value in {line:?}: {e}"))
        };
        let name = name_part.split('{').next().unwrap();
        assert_eq!(name_part.matches('{').count(), name_part.matches('}').count(), "{line}");
        // The sample's base must have been typed already (suffixes map
        // back to the histogram base name).
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|b| typed.iter().any(|(n, k)| n == b && k == "histogram"))
            .unwrap_or(name);
        let kind = &typed
            .iter()
            .find(|(n, _)| n == base)
            .unwrap_or_else(|| panic!("sample {name} has no TYPE line"))
            .1;
        // Histogram buckets are cumulative: each le= count is >= the
        // previous within the same series prefix.
        if kind == "histogram" && name.ends_with("_bucket") {
            let series = name_part.split("le=").next().unwrap().to_owned();
            if let Some((prev_series, prev)) = &last_bucket {
                if *prev_series == series {
                    assert!(value >= *prev, "non-cumulative bucket: {line}");
                }
            }
            last_bucket = Some((series, value));
        } else {
            last_bucket = None;
        }
    }
    assert!(!typed.is_empty(), "page is empty");
}

#[test]
fn prometheus_page_is_valid_exposition_with_monotonic_scrapes() {
    let dir = state_dir("prom");
    let d = daemon(&dir, |c| c.workers = 1);
    let job = accept(&d, &submit("smoke", |r| r.tenant = Some("acme".into())));
    assert_eq!(run_to_end(&d, job), "done");

    let page = d.prometheus();
    validate_exposition(&page);
    // Counter samples and labeled per-tenant gauges made it out.
    assert!(page.contains("\nserve_accepted 1\n"), "{page}");
    assert!(page.contains("serve_tenant_dispatched{tenant=\"acme\"} 1"), "{page}");
    // Histogram triplet: +Inf bucket equals _count.
    assert!(page.contains("serve_submit_us_bucket{le=\"+Inf\"} 1"), "{page}");
    assert!(page.contains("\nserve_submit_us_count 1\n"), "{page}");

    // Scrapes are themselves counted, monotonically.
    let first: u64 = scrape_value(&page, "serve_scrapes");
    let second: u64 = scrape_value(&d.prometheus(), "serve_scrapes");
    assert_eq!((first, second), (1, 2), "scrape counter must be monotonic");
    d.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

fn scrape_value(page: &str, name: &str) -> u64 {
    page.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("{name} not in page"))
        .parse()
        .unwrap()
}

#[test]
fn shed_replies_carry_queue_depth_and_backoff_hint() {
    let dir = state_dir("shed");
    let d = daemon(&dir, |c| {
        c.workers = 0;
        c.queue_cap = 1;
    });
    accept(&d, &submit("smoke", |_| {}));
    // Capacity shed: depth at rejection plus a retry hint (zero workers
    // drain nothing, so the hint is the 1s "come back later").
    let reply = v(&d.request(&submit("smoke", |r| r.seed = Some(1)))[0]);
    assert_eq!(reply["reason"].as_str(), Some("capacity"));
    assert_eq!(reply["queue_depth"].as_u64(), Some(1));
    assert_eq!(reply["retry_after_ms"].as_u64(), Some(1000));
    // Bad requests carry the depth but no hint — retrying won't help.
    let reply = v(&d.request(&submit("not-a-workflow", |_| {}))[0]);
    assert_eq!(reply["reason"].as_str(), Some("bad_request"));
    assert_eq!(reply["queue_depth"].as_u64(), Some(1));
    assert!(reply.get("retry_after_ms").is_none(), "{reply:?}");
    // Draining sheds hint too.
    d.drain();
    let reply = v(&d.request(&submit("smoke", |r| r.seed = Some(2)))[0]);
    assert_eq!(reply["reason"].as_str(), Some("draining"));
    assert_eq!(reply["retry_after_ms"].as_u64(), Some(1000));
    d.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_reply_exports_wall_clock_job_lifecycle() {
    let dir = state_dir("trace");
    let d = daemon(&dir, |c| c.workers = 1);
    let job = accept(&d, &submit("smoke", |r| r.tenant = Some("t7".into())));
    assert_eq!(run_to_end(&d, job), "done");

    let reply = v(&d.request(r#"{"op":"trace"}"#)[0]);
    assert_eq!(reply["type"].as_str(), Some("trace"));
    let chrome = reply["chrome_trace"].as_str().unwrap();
    assert!(chrome.contains("tenant:t7"), "tenant track exported");
    assert!(chrome.contains(&format!("job-{job}")), "job spans exported");
    assert!(chrome.contains("admission") && chrome.contains("ledger"), "daemon tracks exported");
    assert!(!reply["jsonl"].as_str().unwrap().is_empty());
    // The export is non-consuming: a second trace still has the spans.
    let again = v(&d.request(r#"{"op":"trace"}"#)[0]);
    assert!(again["chrome_trace"].as_str().unwrap().contains(&format!("job-{job}")));
    d.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shed_spike_watchdog_fires_edge_triggered_into_metrics() {
    let dir = state_dir("spike");
    let d = daemon(&dir, |c| {
        c.workers = 0;
        c.queue_cap = 1;
        c.health.shed_spike = 2;
        c.health.shed_window_ms = 1_000_000; // one burst stays in window
    });
    accept(&d, &submit("smoke", |_| {}));
    for seed in [1, 2, 3] {
        let reply = v(&d.request(&submit("smoke", |r| r.seed = Some(seed)))[0]);
        assert_eq!(reply["reason"].as_str(), Some("capacity"));
    }
    let fired = d.health_tick();
    assert_eq!(fired.len(), 1, "{fired:?}");
    assert_eq!(fired[0].kind, HealthKind::ShedSpike);
    assert_eq!(fired[0].value, 3, "all three sheds in the window");
    // Edge-triggered: the persisting condition does not re-fire.
    assert!(d.health_tick().is_empty());

    // The diagnosis reached the counter and the `metrics` reply ring.
    assert_eq!(d.snapshot().counter("serve_diagnoses"), 1);
    let m = metrics(&d);
    let diags = m["diagnoses"].as_array().unwrap();
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0]["kind"].as_str(), Some("shed-spike"));
    assert_eq!(diags[0]["subject"].as_str(), Some("admission"));
    d.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_traffic_does_not_perturb_job_results() {
    // Golden: the job in a quiet daemon.
    let golden_dir = state_dir("zp-golden");
    let d = daemon(&golden_dir, |c| c.window_ms = 20);
    let job = accept(&d, &submit("genomes", |r| r.seed = Some(9)));
    assert_eq!(run_to_end(&d, job), "done");
    let golden = std::fs::read(golden_dir.join(format!("job-{job}-result.json"))).unwrap();
    d.shutdown();

    // Same job under heavy observability traffic: metrics/trace/scrape
    // before, during (from the stream callback, mid-run), and after.
    let dir = state_dir("zp-noisy");
    let d = daemon(&dir, |c| c.window_ms = 20);
    let _ = metrics(&d);
    let _ = d.prometheus();
    let job2 = accept(&d, &submit("genomes", |r| r.seed = Some(9)));
    assert_eq!(job, job2);
    let mut stream = Request::new("stream");
    stream.job = Some(job2);
    let mut lines = Vec::new();
    d.handle_line(&stream.to_line(), &mut |line| {
        if line.contains("\"type\":\"window\"") {
            let _ = metrics(&d);
            let _ = d.request(r#"{"op":"trace"}"#);
            let _ = d.prometheus();
            let _ = d.health_tick();
        }
        lines.push(line);
    });
    assert_eq!(v(lines.last().unwrap())["state"].as_str(), Some("done"));
    let noisy = std::fs::read(dir.join(format!("job-{job2}-result.json"))).unwrap();
    assert_eq!(noisy, golden, "observability traffic changed the sim result bytes");
    d.shutdown();
    let _ = std::fs::remove_dir_all(&golden_dir);
    let _ = std::fs::remove_dir_all(&dir);
}
