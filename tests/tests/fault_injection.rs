//! End-to-end fault injection and recovery: crash/retry correctness,
//! lineage-minimal recovery, schedule-independent determinism (same fault
//! seed ⇒ bit-identical outcome), and fault-free equivalence.
//!
//! The fixed-seed suite honours `DFL_FAULT_SEEDS` (comma-separated list,
//! default "1,42,7") so CI can sweep seeds in a matrix.

use std::collections::BTreeMap;

use proptest::prelude::*;

use dfl_iosim::{FaultPlan, SimError, TierKind};
use dfl_workflows::engine::{run, EngineError, Placement, RetryPolicy, RunConfig, RunResult, Staging};
use dfl_workflows::spec::{FileProduce, FileUse, TaskSpec, WorkflowSpec};

/// Two producers on different nodes write node-local intermediates; one
/// consumer on node 0 reads both and computes long enough to be crashed
/// mid-flight.
fn diamond() -> WorkflowSpec {
    let mut w = WorkflowSpec::new("diamond");
    w.input("in.dat", 8 << 20);
    w.task(
        TaskSpec::new("prod-0", "prod", 1)
            .read(FileUse::whole("in.dat"))
            .write(FileProduce::new("m0.dat", 16 << 20))
            .compute_ms(50),
    );
    w.task(
        TaskSpec::new("prod-1", "prod", 1)
            .read(FileUse::whole("in.dat"))
            .write(FileProduce::new("m1.dat", 16 << 20))
            .compute_ms(50),
    );
    w.task(
        TaskSpec::new("cons-0", "cons", 2)
            .read(FileUse::whole("m0.dat"))
            .read(FileUse::whole("m1.dat"))
            .write(FileProduce::new("out.dat", 8 << 20))
            .compute_ms(500),
    );
    w
}

/// RoundRobin on 2 nodes: prod-0 and cons-0 on node 0, prod-1 on node 1.
/// Intermediates go to node-local RAM disk, so crashing node 0 destroys
/// m0.dat but not m1.dat.
fn diamond_cfg() -> RunConfig {
    let mut cfg = RunConfig::default_gpu(2);
    cfg.shards = dfl_tests::env_shards_for(2);
    cfg.placement = Placement::RoundRobin;
    cfg.staging = Staging::local_intermediates(TierKind::Beegfs, TierKind::Ramdisk);
    cfg
}

fn final_sizes(r: &RunResult) -> BTreeMap<String, u64> {
    r.measurements.files.iter().map(|f| (f.path.clone(), f.size)).collect()
}

#[test]
fn crash_recovers_minimal_producer_set_and_outputs_match() {
    let clean = run(&diamond(), &diamond_cfg()).unwrap();

    let mut cfg = diamond_cfg();
    // Crash node 0 while cons-0 is computing (producers are long done):
    // cons-0's attempt dies and m0.dat — only replica on node 0's RAM
    // disk — is lost. m1.dat (node 1) survives.
    cfg.faults = FaultPlan::seeded(3).crash(0, 300_000_000, 100_000_000);
    let r = run(&diamond(), &cfg).unwrap();

    assert_eq!(r.failure.crashes, 1);
    assert_eq!(r.failure.failed_attempts, 1, "only cons-0 was running");
    assert!(r.failure.lost_files >= 1, "m0.dat lost: {}", r.failure);

    // Lineage recovery re-runs ONLY prod-0 (producer of the lost file) and
    // retries the consumer; prod-1's surviving output is reused as-is.
    let names: Vec<&str> = r.reports.iter().map(|j| j.name.as_str()).collect();
    assert_eq!(r.failure.recovery_jobs, 1, "minimal producer set: {names:?}");
    assert_eq!(r.failure.retries, 1, "one retry of cons-0: {names:?}");
    assert!(names.contains(&"prod-0~rec1"), "{names:?}");
    assert!(names.contains(&"cons-0~r1"), "{names:?}");
    assert_eq!(names.iter().filter(|n| n.starts_with("prod-1")).count(), 1, "{names:?}");

    // Recovery traffic is accounted separately from useful traffic.
    assert!(r.failure.recovery_bytes > 0);
    assert!(r.failure.wasted_bytes > 0 || r.failure.wasted_ns > 0);
    assert!(r.failure.goodput_bytes() < r.failure.total_bytes);

    // The workflow's final outputs are identical to the fault-free run.
    assert_eq!(final_sizes(&r), final_sizes(&clean));
    assert!(r.makespan_s > clean.makespan_s, "crash + recovery cost time");
}

#[test]
fn none_plan_matches_fault_free_run_exactly() {
    let base = run(&diamond(), &diamond_cfg()).unwrap();
    let mut cfg = diamond_cfg();
    cfg.faults = FaultPlan::none().seed(1234); // seeded but inert
    let r = run(&diamond(), &cfg).unwrap();
    assert_eq!(r.makespan_s, base.makespan_s);
    assert_eq!(
        r.measurements.to_json().unwrap(),
        base.measurements.to_json().unwrap(),
        "an empty fault plan must not perturb the schedule"
    );
    assert!(r.failure.is_clean());
}

#[test]
fn transient_io_errors_retry_until_success() {
    let mut cfg = diamond_cfg();
    cfg.faults = FaultPlan::seeded(11).io_errors(0.05);
    cfg.retry.max_attempts = 20;
    let r = run(&diamond(), &cfg).unwrap();
    // With ~60 I/O ops at p=0.05 some attempt almost surely fails; if the
    // seed happens to spare us the run is simply clean.
    assert_eq!(r.failure.transient_io_errors, r.failure.failed_attempts);
    assert_eq!(final_sizes(&r), final_sizes(&run(&diamond(), &diamond_cfg()).unwrap()));
}

#[test]
fn retries_exhausted_surfaces_as_error() {
    let mut cfg = diamond_cfg();
    cfg.faults = FaultPlan::seeded(3).crash(0, 300_000_000, 100_000_000);
    cfg.retry = RetryPolicy::none();
    match run(&diamond(), &cfg) {
        Err(EngineError::Sim(SimError::RetriesExhausted { job, attempts: 1 })) => {
            assert_eq!(job, "cons-0");
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
}

#[test]
fn stage_budget_caps_retries() {
    let mut cfg = diamond_cfg();
    // A down-forever node makes every retry of cons-0 fail again.
    cfg.faults = FaultPlan::seeded(3).crash(0, 300_000_000, u64::MAX);
    cfg.retry.max_attempts = 50;
    cfg.retry.stage_budget = Some(2);
    match run(&diamond(), &cfg) {
        Err(EngineError::Sim(SimError::RetriesExhausted { .. })) => {}
        Err(EngineError::Sim(SimError::Deadlock { .. })) => {} // retries queue on the dead node
        other => panic!("expected exhaustion or deadlock, got {other:?}"),
    }
}

/// One fault scenario, run with a given seed.
fn seeded_run(seed: u64) -> RunResult {
    let mut cfg = diamond_cfg();
    cfg.faults =
        FaultPlan::seeded(seed).crash(0, 300_000_000, 100_000_000).io_errors(0.01);
    cfg.retry.max_attempts = 30;
    run(&diamond(), &cfg).expect("recoverable scenario")
}

/// CI sweeps this via `DFL_FAULT_SEEDS=<seed>`; locally it covers a small
/// default set. Same seed ⇒ bit-identical failure report, makespan, and
/// measurement JSON.
#[test]
fn fault_suite_is_deterministic_across_seeds() {
    for seed in dfl_tests::seed_matrix("DFL_FAULT_SEEDS", "1,42,7") {
        let a = seeded_run(seed);
        let b = seeded_run(seed);
        assert_eq!(a.failure, b.failure, "seed {seed}");
        assert_eq!(a.makespan_s, b.makespan_s, "seed {seed}");
        assert_eq!(
            a.measurements.to_json().unwrap(),
            b.measurements.to_json().unwrap(),
            "seed {seed}"
        );
        assert_eq!(a.failure.crashes, 1, "seed {seed}: the planned crash fires");
        // And the workflow still finished correctly.
        assert_eq!(final_sizes(&a), final_sizes(&run(&diamond(), &diamond_cfg()).unwrap()));
    }
}

/// Same scenario as [`seeded_run`] but with the timeline recorder on.
fn seeded_run_obs(seed: u64) -> RunResult {
    let mut cfg = diamond_cfg();
    cfg.obs = Some(dfl_obs::ObsConfig::sampled(20_000_000));
    cfg.faults =
        FaultPlan::seeded(seed).crash(0, 300_000_000, 100_000_000).io_errors(0.01);
    cfg.retry.max_attempts = 30;
    run(&diamond(), &cfg).expect("recoverable scenario")
}

/// Same seed ⇒ bit-identical exported timeline, even under a fault plan
/// with crashes, cancelled flows, retries, and recovery jobs. Sweeps the
/// same `DFL_FAULT_SEEDS` matrix as the failure-report suite.
#[test]
fn fault_timelines_are_byte_identical_across_seeds() {
    for seed in dfl_tests::seed_matrix("DFL_FAULT_SEEDS", "1,42,7") {
        let a = seeded_run_obs(seed);
        let b = seeded_run_obs(seed);
        let (ta, tb) = (a.timeline.as_ref().unwrap(), b.timeline.as_ref().unwrap());
        assert_eq!(ta, tb, "seed {seed}: timelines diverge");
        assert_eq!(
            dfl_obs::chrome_trace(ta),
            dfl_obs::chrome_trace(tb),
            "seed {seed}: chrome-trace export diverges"
        );
        assert_eq!(dfl_obs::jsonl(ta), dfl_obs::jsonl(tb), "seed {seed}: jsonl diverges");

        // The recorder is a pure observer: the run itself is unchanged
        // from the unrecorded one, and the timeline reflects the faults.
        let plain = seeded_run(seed);
        assert_eq!(a.failure, plain.failure, "seed {seed}: recording perturbed the run");
        assert_eq!(a.makespan_s, plain.makespan_s, "seed {seed}");
        assert!(ta.instants().any(|i| i.kind == dfl_obs::InstantKind::NodeCrash));
        assert_eq!(
            ta.metrics.counter("node_crashes"),
            u64::from(a.failure.crashes),
            "seed {seed}"
        );
        assert_eq!(
            ta.metrics.counter("attempts_failed"),
            u64::from(a.failure.failed_attempts),
            "seed {seed}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Determinism holds across arbitrary seeds and crash windows, not just
    /// hand-picked ones.
    #[test]
    fn failure_reports_are_reproducible(
        seed in any::<u64>(),
        crash_ms in 10u64..600,
        down_ms in 10u64..300,
    ) {
        let mk = || {
            let mut cfg = diamond_cfg();
            cfg.faults = FaultPlan::seeded(seed)
                .crash(0, crash_ms * 1_000_000, down_ms * 1_000_000)
                .io_errors(0.002);
            cfg.retry.max_attempts = 30;
            run(&diamond(), &cfg)
        };
        match (mk(), mk()) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.failure, b.failure);
                prop_assert_eq!(a.makespan_s, b.makespan_s);
                prop_assert_eq!(
                    a.measurements.to_json().unwrap(),
                    b.measurements.to_json().unwrap()
                );
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "diverged: {a:?} vs {b:?}"),
        }
    }
}

/// A recovery job crashing *itself*: the first crash kills cons-0 and
/// destroys m0.dat, so prod-0~rec1 is issued; the second crash window is
/// timed to kill prod-0~rec1 mid-flight (it runs 400–465 ms on node 0), so
/// the resubmit replaces-chain must issue prod-0~rec2 and point cons-0's
/// dependency at it. The consumer must be released exactly once — a
/// double-release would show up as two successful cons-0 attempts.
#[test]
fn crashed_recovery_job_is_reissued_and_releases_dependents_once() {
    let mut cfg = diamond_cfg();
    cfg.faults = FaultPlan::seeded(3)
        .crash(0, 300_000_000, 100_000_000)
        .crash(0, 430_000_000, 50_000_000);
    cfg.retry.max_attempts = 30;
    let r = run(&diamond(), &cfg).unwrap();

    let names: Vec<&str> = r.reports.iter().map(|j| j.name.as_str()).collect();
    assert!(names.contains(&"prod-0~rec1"), "{names:?}");
    assert!(names.contains(&"prod-0~rec2"), "rec1 crashed, rec2 reissued: {names:?}");
    assert!(r.failure.recovery_jobs >= 2, "{}", r.failure);
    assert_eq!(r.failure.crashes, 2, "{}", r.failure);

    // The crashed rec1 attempt is reported failed; exactly one rec attempt
    // succeeds, and the consumer runs to completion exactly once.
    let rec_ok =
        r.reports.iter().filter(|j| j.name.starts_with("prod-0~rec") && !j.failed).count();
    assert_eq!(rec_ok, 1, "{names:?}");
    let cons_ok =
        r.reports.iter().filter(|j| j.name.starts_with("cons-0") && !j.failed).count();
    assert_eq!(cons_ok, 1, "dependents released exactly once: {names:?}");

    // And the final outputs still match the fault-free run byte-for-byte.
    assert_eq!(final_sizes(&r), final_sizes(&run(&diamond(), &diamond_cfg()).unwrap()));
}
