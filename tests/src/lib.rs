//! Cross-crate integration tests live in `tests/tests/`.
//!
//! Shared helpers for those tests.

use dfl_trace::MeasurementSet;
use dfl_workflows::engine::{run, RunConfig, RunResult};
use dfl_workflows::spec::WorkflowSpec;

/// Runs a spec on a small GPU cluster and returns the result.
pub fn quick_run(spec: &WorkflowSpec, nodes: usize) -> RunResult {
    run(spec, &RunConfig::default_gpu(nodes)).expect("simulation succeeds")
}

/// Asserts two measurement sets are identical via their canonical JSON.
pub fn assert_same_measurements(a: &MeasurementSet, b: &MeasurementSet) {
    assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
}

/// Seed matrix from an environment variable: `var` as a comma-separated
/// `u64` list (whitespace and empty items tolerated), falling back to
/// `default` when unset. This is how CI fans one suite out over seeds —
/// `DFL_FAULT_SEEDS`, `DFL_CHAOS_SEEDS`, `DFL_CORRUPT_SEEDS`, and
/// `DFL_SHARD_SEEDS` all parse through here.
///
/// # Panics
/// Panics (failing the calling test loudly) when the variable is set but
/// contains a non-integer item — a typo'd matrix should never silently
/// shrink coverage.
pub fn seed_matrix(var: &str, default: &str) -> Vec<u64> {
    let raw = std::env::var(var).unwrap_or_else(|_| default.to_owned());
    raw.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().unwrap_or_else(|_| panic!("{var} must be a u64 list, got '{s}'")))
        .collect()
}

/// Event-core shard count for suites that honour the `DFL_SHARDS` CI
/// matrix leg (default 1). Because sharding is byte-invariant, any suite
/// can run under any count without changing its assertions.
pub fn env_shards() -> u32 {
    std::env::var("DFL_SHARDS")
        .ok()
        .map(|s| s.trim().parse().unwrap_or_else(|_| panic!("DFL_SHARDS must be a u32, got '{s}'")))
        .unwrap_or(1)
}

/// [`env_shards`] clamped to a fixture's node count. A plan wider than the
/// cluster is a typed error by design, so small fixtures join the
/// `DFL_SHARDS` matrix at their maximum width instead of failing to start.
pub fn env_shards_for(nodes: usize) -> u32 {
    env_shards().min(nodes as u32)
}

#[cfg(test)]
mod tests {
    use super::seed_matrix;

    #[test]
    fn seed_matrix_parses_env_default_and_overrides() {
        // Defaults apply when the variable is unset.
        assert_eq!(seed_matrix("DFL_TEST_SEEDS_UNSET", "1,42,7"), vec![1, 42, 7]);
        // Whitespace and empty items are tolerated; order is preserved.
        std::env::set_var("DFL_TEST_SEEDS_SET", " 20260806, 3 ,,11 ");
        assert_eq!(seed_matrix("DFL_TEST_SEEDS_SET", "1"), vec![20260806, 3, 11]);
        std::env::remove_var("DFL_TEST_SEEDS_SET");
    }

    #[test]
    #[should_panic(expected = "must be a u64 list")]
    fn seed_matrix_rejects_non_integer_items() {
        std::env::set_var("DFL_TEST_SEEDS_BAD", "1,banana");
        let _ = seed_matrix("DFL_TEST_SEEDS_BAD", "1");
    }
}
