//! Cross-crate integration tests live in `tests/tests/`.
//!
//! Shared helpers for those tests.

use dfl_trace::MeasurementSet;
use dfl_workflows::engine::{run, RunConfig, RunResult};
use dfl_workflows::spec::WorkflowSpec;

/// Runs a spec on a small GPU cluster and returns the result.
pub fn quick_run(spec: &WorkflowSpec, nodes: usize) -> RunResult {
    run(spec, &RunConfig::default_gpu(nodes)).expect("simulation succeeds")
}

/// Asserts two measurement sets are identical via their canonical JSON.
pub fn assert_same_measurements(a: &MeasurementSet, b: &MeasurementSet) {
    assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
}

/// Seed matrix from an environment variable: `var` as a comma-separated
/// `u64` list (whitespace and empty items tolerated), falling back to
/// `default` when unset. This is how CI fans one suite out over seeds —
/// `DFL_FAULT_SEEDS`, `DFL_CHAOS_SEEDS`, `DFL_CORRUPT_SEEDS`, and
/// `DFL_SHARD_SEEDS` all parse through here.
///
/// # Panics
/// Panics (failing the calling test loudly) when the variable is set but
/// contains a non-integer item, or when it is set and yields no seeds at
/// all (e.g. `DFL_FAULT_SEEDS=" , "`) — a typo'd matrix should never
/// silently shrink coverage, and an empty one would make every seeded
/// suite pass vacuously.
pub fn seed_matrix(var: &str, default: &str) -> Vec<u64> {
    let from_env = std::env::var(var).ok();
    let raw = from_env.clone().unwrap_or_else(|| default.to_owned());
    let seeds: Vec<u64> = raw
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().unwrap_or_else(|_| panic!("{var} must be a u64 list, got '{s}'")))
        .collect();
    if seeds.is_empty() && from_env.is_some() {
        panic!("{var} is set but contains no seeds (got '{raw}'); refusing to run zero-seed suites");
    }
    seeds
}

/// Event-core shard count for suites that honour the `DFL_SHARDS` CI
/// matrix leg (default 1). Because sharding is byte-invariant, any suite
/// can run under any count without changing its assertions.
pub fn env_shards() -> u32 {
    std::env::var("DFL_SHARDS")
        .ok()
        .map(|s| s.trim().parse().unwrap_or_else(|_| panic!("DFL_SHARDS must be a u32, got '{s}'")))
        .unwrap_or(1)
}

/// [`env_shards`] clamped to a fixture's node count. A plan wider than the
/// cluster is a typed error by design, so small fixtures join the
/// `DFL_SHARDS` matrix at their maximum width instead of failing to start.
pub fn env_shards_for(nodes: usize) -> u32 {
    env_shards().min(nodes as u32)
}

#[cfg(test)]
mod tests {
    use super::seed_matrix;

    #[test]
    fn seed_matrix_parses_env_default_and_overrides() {
        // Defaults apply when the variable is unset.
        assert_eq!(seed_matrix("DFL_TEST_SEEDS_UNSET", "1,42,7"), vec![1, 42, 7]);
        // Whitespace and empty items are tolerated; order is preserved.
        std::env::set_var("DFL_TEST_SEEDS_SET", " 20260806, 3 ,,11 ");
        assert_eq!(seed_matrix("DFL_TEST_SEEDS_SET", "1"), vec![20260806, 3, 11]);
        std::env::remove_var("DFL_TEST_SEEDS_SET");
    }

    #[test]
    #[should_panic(expected = "must be a u64 list")]
    fn seed_matrix_rejects_non_integer_items() {
        std::env::set_var("DFL_TEST_SEEDS_BAD", "1,banana");
        let _ = seed_matrix("DFL_TEST_SEEDS_BAD", "1");
    }

    #[test]
    #[should_panic(expected = "contains no seeds")]
    fn seed_matrix_rejects_set_but_empty_list() {
        // A var set to only separators/whitespace must not silently yield
        // zero seeds (every seeded suite would pass vacuously).
        std::env::set_var("DFL_TEST_SEEDS_EMPTY", " , ,");
        let _ = seed_matrix("DFL_TEST_SEEDS_EMPTY", "1");
    }

    #[test]
    #[should_panic(expected = "DFL_SHARDS must be a u32")]
    fn env_shards_rejects_non_integer() {
        std::env::set_var("DFL_SHARDS", "4x");
        let r = std::panic::catch_unwind(super::env_shards);
        std::env::remove_var("DFL_SHARDS");
        // Re-panic outside the guard so the var is cleaned up for other
        // tests in this process either way.
        if let Err(p) = r {
            std::panic::resume_unwind(p);
        }
    }
}
