//! Cross-crate integration tests live in `tests/tests/`.
//!
//! Shared helpers for those tests.

use dfl_trace::MeasurementSet;
use dfl_workflows::engine::{run, RunConfig, RunResult};
use dfl_workflows::spec::WorkflowSpec;

/// Runs a spec on a small GPU cluster and returns the result.
pub fn quick_run(spec: &WorkflowSpec, nodes: usize) -> RunResult {
    run(spec, &RunConfig::default_gpu(nodes)).expect("simulation succeeds")
}

/// Asserts two measurement sets are identical via their canonical JSON.
pub fn assert_same_measurements(a: &MeasurementSet, b: &MeasurementSet) {
    assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
}
