//! Quickstart: measure a tiny hand-written pipeline, build its data flow
//! lifecycle graph, and ask DataLife-rs what to optimize.
//!
//! Run with: `cargo run --release -p dfl-examples --bin quickstart`

use dfl_core::analysis::cost::CostModel;
use dfl_core::analysis::critical_path::critical_path;
use dfl_core::analysis::patterns::{analyze, report, AnalysisConfig};
use dfl_core::analysis::ranking::rank_producer_consumer;
use dfl_core::viz::render_ascii;
use dfl_core::DflGraph;
use dfl_trace::{IoTiming, Monitor, MonitorConfig, OpenMode};

fn main() {
    // 1. Measurement: the monitor plays the role of the paper's LD_PRELOAD
    //    collector. Each task reports its POSIX-style I/O through a context.
    let monitor = Monitor::new(MonitorConfig::default());
    let mib = 1 << 20;

    // A producer writes a 64 MiB file…
    let gen = monitor.begin_task("generate", 0);
    let fd = gen.open("dataset.bin", OpenMode::Write, None, 0);
    for i in 0..64u64 {
        gen.write(fd, mib, IoTiming::new(i * 10_000_000, 5_000_000)).unwrap();
    }
    gen.close(fd, 700_000_000).unwrap();
    gen.finish(700_000_000);

    // …a trainer re-reads the first half four times (temporal reuse)…
    let train = monitor.begin_task("train", 700_000_000);
    let fd = train.open("dataset.bin", OpenMode::Read, Some(64 * mib), 700_000_000);
    for pass in 0..4u64 {
        for i in 0..32u64 {
            train
                .read_at(fd, i * mib, mib, IoTiming::new(700_000_000 + pass * 100_000_000, 2_000_000))
                .unwrap();
        }
    }
    train.close(fd, 1_500_000_000).unwrap();
    train.finish(1_500_000_000);

    // …and a scorer reads a small subset (data non-use).
    let score = monitor.begin_task("score", 1_500_000_000);
    let fd = score.open("dataset.bin", OpenMode::Read, Some(64 * mib), 1_500_000_000);
    score.read_at(fd, 0, 8 * mib, IoTiming::new(1_500_000_000, 20_000_000)).unwrap();
    score.close(fd, 1_600_000_000).unwrap();
    score.finish(1_600_000_000);

    // 2. Lifecycle graph: tasks and the file become vertices; reads/writes
    //    become consumer/producer flow edges with measured properties.
    let graph = DflGraph::from_measurements(&monitor.snapshot());
    println!(
        "DFL-DAG: {} vertices, {} edges\n",
        graph.vertex_count(),
        graph.edge_count()
    );
    let cp = critical_path(&graph, &CostModel::Volume);
    println!("{}", render_ascii(&graph, Some(&cp)));

    // 3. Rank the producer-consumer relations (Fig. 2f style).
    println!("{}", rank_producer_consumer(&graph));

    // 4. Opportunity analysis (Table 1): reuse ⇒ caching, subset ⇒
    //    on-demand movement, etc.
    let cfg = AnalysisConfig { volume_threshold: 32 * mib, ..Default::default() };
    let opportunities = analyze(&graph, &cfg);
    print!("{}", report(&graph, &opportunities));
}
