//! Belle II distributed caching (§6.4): compare FTP-copying remote datasets
//! against reading them through a TAZeR-style multi-level cache, and show
//! where the bytes were served from.
//!
//! Run with: `cargo run --release -p dfl-examples --bin belle2_caching`

use dfl_iosim::breakdown::FlowTag;
use dfl_workflows::belle2::{generate, run_config, Belle2Config, DataAccess};
use dfl_workflows::engine::run;

fn main() {
    // A reduced campaign: 48 tasks on 4 nodes, 16 datasets × 512 MiB.
    let cfg = Belle2Config {
        tasks: 48,
        pool: 16,
        dataset_bytes: 512 << 20,
        datasets_per_task: 6,
        compute_ms: 30_000,
        ..Belle2Config::default()
    };
    println!(
        "campaign: {} MC tasks drawing {} of {} datasets ({} MiB each) over a 1 Gb/s WAN\n",
        cfg.tasks,
        cfg.datasets_per_task,
        cfg.pool,
        cfg.dataset_bytes >> 20
    );

    let mut results = Vec::new();
    for access in [DataAccess::FtpCopy, DataAccess::Cached] {
        let spec = generate(&cfg, access);
        let rc = run_config(&cfg, access, 4);
        let r = run(&spec, &rc).expect("simulation");
        println!("{access:?}: {:.1}s", r.makespan_s);
        let b = &r.total_breakdown;
        for tag in [
            FlowTag::Stage,
            FlowTag::NetworkRead,
            FlowTag::CacheL1,
            FlowTag::CacheL2,
            FlowTag::CacheL3,
            FlowTag::CacheL4,
            FlowTag::LocalRead,
        ] {
            let t = b.get(tag);
            if t > 0 {
                println!("    {:<13} {:>9.1} flow-seconds", tag.label(), t as f64 / 1e9);
            }
        }
        results.push(r.makespan_s);
    }
    println!(
        "\ncaching speedup: {:.1}x (paper §6.4 reports 10.0x at full scale —",
        results[0] / results[1]
    );
    println!("run `cargo run --release -p dfl-bench --bin fig8_belle2` for the full study)");
}
