//! DeepDriveMD response-time optimization (§6.3): detect the aggregator and
//! reuse patterns in the original pipeline, then run the shortened
//! (coalesced + asynchronous) pipeline the analysis suggests.
//!
//! Run with: `cargo run --release -p dfl-examples --bin ddmd_response_time`

use dfl_core::analysis::patterns::{analyze, AnalysisConfig, PatternKind};
use dfl_core::DflGraph;
use dfl_workflows::ddmd::{generate, DdmdConfig, Fig7Config, Pipeline};
use dfl_workflows::engine::run;

fn main() {
    let cfg = DdmdConfig { iterations: 3, ..DdmdConfig::default() };

    // Run the original 4-stage pipeline and analyze its lifecycle graph.
    let original = run(&generate(&cfg, Pipeline::Original), &Fig7Config::OriginalNfs.run_config())
        .expect("original run");
    let g = DflGraph::from_measurements(&original.measurements);
    let analysis_cfg = AnalysisConfig { fan_in_threshold: 4, ..Default::default() };
    let opportunities = analyze(&g, &analysis_cfg);

    println!("original pipeline: {:.1}s", original.makespan_s);
    println!("\nDFL opportunity analysis finds the §6.3 signatures:");
    for kind in [
        PatternKind::Aggregator,
        PatternKind::IntraTaskLocality,
        PatternKind::InterTaskLocality,
        PatternKind::DataNonUse,
        PatternKind::AggregatorThenRegular,
    ] {
        if let Some(o) = opportunities.iter().find(|o| o.pattern == kind) {
            println!("  [{}] {}", kind.label(), o.evidence);
        }
    }

    // Apply the remediations: coalesce aggregation, train asynchronously.
    println!("\n→ remediation: coalesce the aggregator into its consumers and move");
    println!("  training off the critical path (nested asynchronous pipeline)\n");
    for variant in [Fig7Config::ShortenedNfs, Fig7Config::ShortenedBfs, Fig7Config::ShortenedBfsShm] {
        let spec = generate(&cfg, variant.pipeline());
        let r = run(&spec, &variant.run_config()).expect("shortened run");
        println!(
            "{:<18} {:>7.1}s  ({:.2}x vs original)",
            variant.label(),
            r.makespan_s,
            original.makespan_s / r.makespan_s
        );
    }
    println!("\npaper §6.3: shortened pipeline achieves up to 1.9x");
}
