//! "Parallelize between trees": find the critical and near-critical
//! execution threads of a workflow (§5.1), then use placement to run them
//! on separate nodes — the optimization strategy the paper pairs with
//! improving individual caterpillar fragments.
//!
//! Run with: `cargo run --release -p dfl-examples --bin parallel_threads`

use dfl_core::analysis::cost::CostModel;
use dfl_core::analysis::near_critical::k_disjoint_paths;
use dfl_core::analysis::stats::graph_stats;
use dfl_core::DflGraph;
use dfl_workflows::engine::{run, Placement, RunConfig};
use dfl_workflows::seismic::{generate, SeismicConfig};

fn main() {
    // A data-heavy campaign (long recordings) where flow dominates compute.
    let cfg = SeismicConfig {
        stations: 24,
        group_size: 6,
        signal_bytes: 400 << 20,
        processed_bytes: 300 << 20,
        partial_bytes: 500 << 20,
        preprocess_compute_ms: 500,
        correlate_compute_ms: 2_000,
        compress_compute_ms: 1_500,
    };
    let spec = generate(&cfg);

    // Measure once to get the lifecycle graph.
    let baseline = run(&spec, &RunConfig::default_gpu(4)).expect("baseline");
    let g = DflGraph::from_measurements(&baseline.measurements);
    println!("seismic cross correlation, {} stations in {} groups", cfg.stations, cfg.groups());
    print!("{}", graph_stats(&g));

    // The critical and near-critical threads under the volume property.
    let threads = k_disjoint_paths(&g, &CostModel::Volume, 4);
    println!("\nindependent execution threads (vertex-disjoint, by volume):");
    for (i, t) in threads.iter().enumerate() {
        let names: Vec<String> = t
            .vertices
            .iter()
            .map(|&v| g.vertex(v).name.clone())
            .collect();
        println!(
            "  thread {}: cost {:.1} MiB, {} vertices: {} … {}",
            i + 1,
            t.total_cost / (1 << 20) as f64,
            names.len(),
            names.first().cloned().unwrap_or_default(),
            names.last().cloned().unwrap_or_default(),
        );
    }

    // Each correlation group is one caterpillar. Keeping intermediates on
    // node-local RAM-disks only pays off when a thread's tasks share the
    // node — co-location is what makes locality exploitable.
    use dfl_iosim::storage::TierKind;
    use dfl_workflows::engine::Staging;

    let mut scattered = RunConfig::default_gpu(4);
    scattered.staging = Staging::local_intermediates(TierKind::Beegfs, TierKind::Ramdisk);
    let scattered_r = run(&spec, &scattered).expect("scattered");

    let mut grouped = scattered.clone();
    grouped.placement = Placement::ByGroup;
    let grouped_r = run(&spec, &grouped).expect("grouped");

    println!("\nall shared storage, round-robin:        {:.2}s", baseline.makespan_s);
    println!("local intermediates, threads scattered: {:.2}s", scattered_r.makespan_s);
    println!("local intermediates, threads co-located: {:.2}s", grouped_r.makespan_s);
    println!(
        "speedup from separating + localizing the threads: {:.2}x",
        baseline.makespan_s / grouped_r.makespan_s
    );
}
