//! Fault tolerance: crash a node mid-workflow and watch the engine
//! recover — lineage re-runs rebuild the lost node-local intermediates,
//! the failed task is retried with backoff, and the failure report
//! itemizes what the fault cost.
//!
//! Run with: `cargo run --release -p dfl-examples --bin fault_tolerance`

use dfl_iosim::{FaultPlan, TierKind};
use dfl_workflows::engine::{run, Placement, RunConfig, Staging};
use dfl_workflows::spec::{FileProduce, FileUse, TaskSpec, WorkflowSpec};

fn spec() -> WorkflowSpec {
    let mut w = WorkflowSpec::new("ft-demo");
    w.input("raw.dat", 64 << 20);
    // Two preprocessors write node-local intermediates (RAM disk)…
    for i in 0..2u64 {
        w.task(
            TaskSpec::new(&format!("prep-{i}"), "prep", 1)
                .read(FileUse::region("raw.dat", i * (32 << 20), 32 << 20))
                .write(FileProduce::new(&format!("chunk-{i}.dat"), 32 << 20))
                .compute_ms(80),
        );
    }
    // …and an analyzer joins them on node 0 with a long compute phase.
    w.task(
        TaskSpec::new("join-0", "join", 2)
            .read(FileUse::whole("chunk-0.dat"))
            .read(FileUse::whole("chunk-1.dat"))
            .write(FileProduce::new("result.dat", 16 << 20))
            .compute_ms(800),
    );
    w
}

fn main() {
    let mut cfg = RunConfig::default_gpu(2);
    cfg.placement = Placement::RoundRobin;
    cfg.staging = Staging::local_intermediates(TierKind::Beegfs, TierKind::Ramdisk);

    // Baseline: no faults.
    let clean = run(&spec(), &cfg).unwrap();
    println!("fault-free run: {:.2}s\n", clean.makespan_s);

    // Now crash node 0 at t=0.5s (mid-join) for 150 ms. join-0's attempt
    // dies and chunk-0.dat — whose only replica lived on node 0's RAM
    // disk — is lost with it. chunk-1.dat survives on node 1.
    cfg.faults = FaultPlan::seeded(42).crash(0, 500_000_000, 150_000_000);
    let faulted = run(&spec(), &cfg).unwrap();

    println!("faulted run: {:.2}s", faulted.makespan_s);
    println!("{}", faulted.failure);
    println!("job schedule (± = failed attempt, ~rec = lineage recovery, ~r = retry):");
    for j in &faulted.reports {
        let mark = if j.failed { "±" } else { " " };
        println!(
            "  {mark} {:<14} node {}  {:>7.3}s → {:>7.3}s",
            j.name,
            j.node,
            j.start_ns as f64 / 1e9,
            j.end_ns as f64 / 1e9,
        );
    }

    // Same seed, same plan ⇒ bit-identical outcome.
    let again = run(&spec(), &cfg).unwrap();
    assert_eq!(again.failure, faulted.failure);
    assert_eq!(again.makespan_s, faulted.makespan_s);
    println!("\nre-run with the same seed is bit-identical — seed the plan differently");
    println!("(FaultPlan::seeded(n)) to explore other schedules.");
}
