//! The 1000 Genomes scenario end-to-end: simulate the workflow, inspect its
//! lifecycle graph, and apply the paper's §6.2 remediation (caterpillar
//! co-location + local staging) to compare response times.
//!
//! Run with: `cargo run --release -p dfl-examples --bin genomes_pipeline`

use dfl_core::analysis::caterpillar::{caterpillar, CaterpillarRule};
use dfl_core::analysis::cost::CostModel;
use dfl_core::analysis::critical_path::critical_path;
use dfl_core::DflGraph;
use dfl_workflows::engine::run;
use dfl_workflows::genomes::{generate, Fig6Config, GenomesConfig};

fn main() {
    // A mid-sized instance: 4 chromosomes × 8 indiv × 3 populations.
    let cfg = GenomesConfig {
        chromosomes: 4,
        indiv_per_chr: 8,
        populations: 3,
        ..GenomesConfig::default()
    };
    let spec = generate(&cfg);
    println!(
        "1000 Genomes: {} tasks, {:.1} GiB read volume",
        spec.tasks.len(),
        spec.total_read_volume() as f64 / (1u64 << 30) as f64
    );

    // Baseline: everything on the shared parallel filesystem.
    let baseline = run(&spec, &Fig6Config::N10Bfs.run_config()).expect("baseline run");
    println!("\nbaseline (10 nodes, all BeeGFS): {:.2}s", baseline.makespan_s);
    print!("{}", baseline.stage_summary());

    // DFL analysis on the measured execution.
    let g = DflGraph::from_measurements(&baseline.measurements);
    let cp = critical_path(&g, &CostModel::BranchJoin { branch_threshold: 2 });
    let cat = caterpillar(&g, &cp, CaterpillarRule::Dfl);
    println!(
        "\ncritical path has {} branch/join instances; caterpillar covers {} of {} vertices",
        cp.total_cost,
        cat.len(),
        g.vertex_count()
    );
    println!("→ remediation: co-locate each chromosome's caterpillar and stage data locally\n");

    // Remediated: per-caterpillar co-location + RAM-disk staging (§6.2).
    let staged = run(&spec, &Fig6Config::N10BfsShmStaging.run_config()).expect("staged run");
    println!("remediated (co-located + staged): {:.2}s", staged.makespan_s);
    print!("{}", staged.stage_summary());
    println!(
        "\nspeedup: {:.1}x (paper §6.2 reports 15x at full scale)",
        baseline.makespan_s / staged.makespan_s
    );
}
