//! Bring your own workflow: describe an arbitrary task/data pipeline with
//! the `WorkflowSpec` builder, simulate it under different placements, and
//! export the lifecycle graph for visualization.
//!
//! Run with: `cargo run --release -p dfl-examples --bin custom_workflow`

use dfl_core::analysis::cost::CostModel;
use dfl_core::analysis::critical_path::critical_path;
use dfl_core::viz::sankey::{SankeyDiagram, SankeyOptions};
use dfl_core::viz::to_dot;
use dfl_core::DflGraph;
use dfl_iosim::storage::TierKind;
use dfl_workflows::engine::{run, Placement, RunConfig, Staging};
use dfl_workflows::spec::{FileProduce, FileUse, TaskSpec, WorkflowSpec};

fn main() {
    let mb = 1u64 << 20;

    // An ETL-style workflow: extract ×4 → transform ×4 → load (aggregator),
    // with a side "audit" task re-reading everything.
    let mut w = WorkflowSpec::new("etl");
    w.input("source.db", 800 * mb);
    let mut transforms = Vec::new();
    for i in 0..4u64 {
        let extract = w.task(
            TaskSpec::new(&format!("extract-{i}"), "extract", 1)
                .read(FileUse::region("source.db", i * 200 * mb, 200 * mb).ops(16))
                .write(FileProduce::new(&format!("raw-{i}.parquet"), 120 * mb))
                .compute_ms(2_000)
                .group(i as u32),
        );
        let transform = w.task(
            TaskSpec::new(&format!("transform-{i}"), "transform", 2)
                .read(FileUse::whole(&format!("raw-{i}.parquet")).ops(8))
                .write(FileProduce::new(&format!("clean-{i}.parquet"), 80 * mb))
                .compute_ms(4_000)
                .after(extract)
                .group(i as u32),
        );
        transforms.push(transform);
    }
    let mut load = TaskSpec::new("load-0", "load", 3)
        .write(FileProduce::new("warehouse.db", 250 * mb))
        .compute_ms(3_000);
    for i in 0..4u64 {
        load = load.read(FileUse::whole(&format!("clean-{i}.parquet")).ops(8));
    }
    w.task(load);
    w.task(
        TaskSpec::new("audit-0", "audit", 4)
            .read(FileUse::whole("warehouse.db").passes(2).ops(16))
            .write(FileProduce::new("audit-report.txt", mb))
            .compute_ms(2_000),
    );
    w.validate().expect("spec is consistent");

    // Compare placements on a 4-node cluster.
    for (label, placement, local) in [
        ("round-robin, shared FS", Placement::RoundRobin, false),
        ("grouped + local SSD", Placement::ByGroup, true),
    ] {
        let mut cfg = RunConfig::default_gpu(4);
        cfg.placement = placement;
        if local {
            cfg.staging = Staging::local_intermediates(TierKind::Beegfs, TierKind::Ssd);
        }
        let r = run(&w, &cfg).expect("simulation");
        println!("{label:<24} makespan {:.2}s", r.makespan_s);

        if local {
            // Export the measured lifecycle graph.
            let g = DflGraph::from_measurements(&r.measurements);
            let cp = critical_path(&g, &CostModel::Volume);
            let sankey = SankeyDiagram::from_graph(
                &g,
                &SankeyOptions {
                    title: "etl".into(),
                    critical_path: Some(cp.clone()),
                    ..Default::default()
                },
            );
            std::fs::write("etl.sankey.json", sankey.to_json().unwrap()).unwrap();
            std::fs::write("etl.dot", to_dot(&g, "etl", Some(&cp))).unwrap();
            println!("\nwrote etl.sankey.json and etl.dot ({} vertices)", g.vertex_count());
            println!(
                "critical path: {}",
                cp.vertices
                    .iter()
                    .map(|&v| g.vertex(v).name.clone())
                    .collect::<Vec<_>>()
                    .join(" → ")
            );
        }
    }
}
