//! Offline vendored stand-in for `serde`.
//!
//! The real serde crate is unavailable in this build environment, so this
//! crate supplies the subset the workspace actually uses: `Serialize` /
//! `Deserialize` traits (via an intermediate [`Value`] tree rather than
//! serde's visitor architecture) and derive macros re-exported from
//! `serde_derive`. The `serde_json` stand-in renders and parses this
//! [`Value`] tree as real JSON, so external tooling still sees valid JSON.
//!
//! Representation choices (mirroring serde_json's externally-tagged default):
//! - named-field structs → JSON objects
//! - newtype structs → the inner value
//! - tuple structs → arrays
//! - unit enum variants → `"VariantName"`
//! - payload variants → `{"VariantName": <payload>}`
//! - maps → arrays of `[key, value]` pairs (works for non-string keys)

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A parsed/serializable JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (no dedup; last key wins on lookup).
    Object(Vec<(String, Value)>),
}

/// JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    U64(u64),
    I64(i64),
    F64(f64),
}

impl Value {
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(n)) => Some(*n),
            Value::Number(Number::I64(n)) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(n)) => Some(*n),
            Value::Number(Number::U64(n)) if *n <= i64::MAX as u64 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::F64(n)) => Some(*n),
            Value::Number(Number::U64(n)) => Some(*n as f64),
            Value::Number(Number::I64(n)) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup (last occurrence wins, like serde_json's map).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Derive-support helper: extract and deserialize a struct field.
pub fn de_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(f) => T::from_value(f)
            .map_err(|e| Error(format!("field `{name}`: {e}"))),
        None => T::from_value(&Value::Null)
            .map_err(|_| Error(format!("missing field `{name}`"))),
    }
}

// ---- primitive impls ----

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::U64(*self as u64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error(format!("expected unsigned integer, got {v:?}")))?;
                <$t>::try_from(n).map_err(|_| Error(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::I64(*self as i64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error(format!("expected integer, got {v:?}")))?;
                <$t>::try_from(n).map_err(|_| Error(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // serde_json renders non-finite floats as null; accept that back.
        if v.is_null() {
            return Ok(f64::NAN);
        }
        v.as_f64().ok_or_else(|| Error(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|n| n as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned).ok_or_else(|| Error(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error("expected single-char string".into()))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error(format!("expected single-char string, got {s:?}"))),
        }
    }
}

// ---- container impls ----

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items).map_err(|_| Error(format!("expected {N} elements, got {n}")))
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error("expected tuple array".into()))?;
                Ok(($($t::from_value(a.get($n).unwrap_or(&Value::Null))?,)+))
            }
        }
    )+};
}
ser_de_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
);

// Maps serialize as arrays of [key, value] pairs so non-string keys work.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_pairs(v)?.collect()
    }
}

impl<K: Serialize + Ord + std::hash::Hash + Eq, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort by key.
        let mut keys: Vec<&K> = self.keys().collect();
        keys.sort();
        Value::Array(
            keys.into_iter()
                .map(|k| Value::Array(vec![k.to_value(), self[k].to_value()]))
                .collect(),
        )
    }
}
impl<K: Deserialize + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_pairs(v)?.collect()
    }
}

fn map_pairs<'a, K: Deserialize, V: Deserialize>(
    v: &'a Value,
) -> Result<impl Iterator<Item = Result<(K, V), Error>> + 'a, Error> {
    let arr = v.as_array().ok_or_else(|| Error(format!("expected map pair array, got {v:?}")))?;
    Ok(arr.iter().map(|pair| {
        let p = pair.as_array().filter(|p| p.len() == 2).ok_or_else(|| Error("expected [key, value] pair".into()))?;
        Ok((K::from_value(&p[0])?, V::from_value(&p[1])?))
    }))
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, Error> {
        Ok(())
    }
}
