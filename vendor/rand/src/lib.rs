//! Offline vendored stand-in for `rand`.
//!
//! Deterministic, dependency-free PRNG covering the APIs this workspace
//! uses: `StdRng::seed_from_u64`, `SliceRandom::{shuffle, choose}`, and
//! `Rng::gen_range` over integer ranges. The stream differs from upstream
//! rand's StdRng — everything in this repo that relies on seeds defines its
//! own distributions, so only *internal* determinism matters.

use std::ops::Range;

/// Core PRNG interface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers (blanket-implemented for every `RngCore`).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (Lemire-style rejection-free mapping is
    /// overkill here; modulo bias is negligible for simulation workloads).
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli(p).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Integer types samplable from a half-open range.
pub trait SampleRange: Copy {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via splitmix64 — deterministic and fast.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    /// Alias: this stub's StdRng is already small and fast.
    pub type SmallRng = StdRng;
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling/choosing, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element (None on empty).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut r = StdRng::seed_from_u64(1);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }
}
