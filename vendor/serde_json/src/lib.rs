//! Offline vendored stand-in for `serde_json`.
//!
//! Renders and parses real JSON over the vendored serde's [`Value`] tree.
//! Supports the workspace's usage: `to_string` / `to_string_pretty`,
//! `from_str`, and `Value` inspection (`as_array`, indexing).

pub use serde::{Number, Value};

use serde::{Deserialize, Serialize};

/// JSON error (message plus byte offset for parse errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    offset: usize,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.offset > 0 {
            write!(f, "{} at byte {}", self.msg, self.offset)
        } else {
            write!(f, "{}", self.msg)
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error { msg: e.0, offset: 0 }
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes `value` as compact JSON into a writer.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut w: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    w.write_all(s.as_bytes()).map_err(|e| Error { msg: e.to_string(), offset: 0 })
}

/// Parses JSON text into any `Deserialize` type (including `Value`).
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    T::from_value(&v).map_err(Error::from)
}

// ---- writer ----

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::F64(v) if !v.is_finite() => out.push_str("null"),
        Number::F64(v) => {
            // `{:?}` gives the shortest round-trip representation.
            let s = format!("{v:?}");
            out.push_str(&s);
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error { msg: msg.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => {
                self.literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let e = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: a \uDC00-\uDFFF pair must follow.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                char::from_u32(0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00))
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // byte-wise copy of the full scalar is safe).
                    let start = self.pos;
                    let len = utf8_len(self.bytes[start]);
                    let end = (start + len).min(self.bytes.len());
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).map_err(|_| self.err("invalid UTF-8"))?);
                    self.pos = end;
                }
            }
        }
    }

    /// Reads 4 hex digits at the current position and advances past them.
    fn hex4(&mut self) -> Result<u32> {
        let start = self.pos;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[start..end]).map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b < 0xE0 => 2,
        b if b < 0xF0 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_basic() {
        let v: Value = from_str(r#"{"a": [1, -2, 3.5, "x\n", true, null], "b": {}}"#).unwrap();
        assert_eq!(v["a"].as_array().unwrap().len(), 6);
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_i64(), Some(-2));
        assert_eq!(v["a"][3].as_str(), Some("x\n"));
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for f in [0.1f64, 1.0 / 3.0, 1e300, -2.5e-10, 123456789.123456] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} vs {back}");
        }
    }

    #[test]
    fn big_u64_survives() {
        let n = u64::MAX;
        let s = to_string(&n).unwrap();
        assert_eq!(from_str::<u64>(&s).unwrap(), n);
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""é中""#).unwrap();
        assert_eq!(v.as_str(), Some("é中"));
    }
}
