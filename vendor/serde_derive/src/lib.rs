//! Offline vendored stand-in for `serde_derive`.
//!
//! Derives the vendored serde's value-tree `Serialize`/`Deserialize` traits
//! for non-generic structs and enums. The item is parsed directly from the
//! `proc_macro` token stream (no `syn`/`quote` in this environment); output
//! is generated as source text and re-parsed.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
enum TypeDef {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(def) => gen_serialize(&def).parse().expect("generated Serialize impl parses"),
        Err(e) => compile_error(&e),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(def) => gen_deserialize(&def).parse().expect("generated Deserialize impl parses"),
        Err(e) => compile_error(&e),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---- parsing ----

fn parse(input: TokenStream) -> Result<TypeDef, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let kind = loop {
        match toks.get(i) {
            None => return Err("expected `struct` or `enum`".into()),
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // attribute: `#` + bracket group
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
                let k = id.to_string();
                i += 1;
                break k;
            }
            _ => i += 1, // pub, pub(...), etc.
        }
    };
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("derive stub does not support generic type `{name}`"));
    }
    if kind == "struct" {
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(split_top_level(g.stream()).len())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            other => return Err(format!("unexpected struct body {other:?}")),
        };
        Ok(TypeDef::Struct { name, fields })
    } else {
        let body = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => return Err(format!("unexpected enum body {other:?}")),
        };
        let mut variants = Vec::new();
        for chunk in split_top_level(body) {
            let mut j = 0;
            while matches!(chunk.get(j), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
                j += 2;
            }
            let vname = match chunk.get(j) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => return Err(format!("expected variant name, got {other:?}")),
            };
            let fields = match chunk.get(j + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(split_top_level(g.stream()).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named(g.stream())?)
                }
                _ => Fields::Unit, // unit variant (possibly with `= discr`)
            };
            variants.push((vname, fields));
        }
        Ok(TypeDef::Enum { name, variants })
    }
}

/// Splits a field/variant list at top-level commas (angle-bracket aware;
/// parenthesized/braced payloads are atomic `Group` tokens already).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle: i32 = 0;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for chunk in split_top_level(stream) {
        let mut j = 0;
        loop {
            match chunk.get(j) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => j += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    j += 1;
                    if matches!(chunk.get(j), Some(TokenTree::Group(_))) {
                        j += 1; // pub(crate) etc.
                    }
                }
                Some(TokenTree::Ident(id)) => {
                    names.push(id.to_string());
                    break;
                }
                other => return Err(format!("expected field name, got {other:?}")),
            }
        }
    }
    Ok(names)
}

// ---- codegen ----

fn gen_serialize(def: &TypeDef) -> String {
    match def {
        TypeDef::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> =
                        (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                }
                Fields::Named(names) => obj_literal(names, |f| format!("&self.{f}")),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        TypeDef::Enum { name, variants } => {
            let mut arms = Vec::new();
            for (v, fields) in variants {
                let arm = match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => ::serde::Value::String(::std::string::String::from({v:?}))"
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Object(::std::vec![(::std::string::String::from({v:?}), ::serde::Serialize::to_value(__f0))])"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> =
                            binds.iter().map(|b| format!("::serde::Serialize::to_value({b})")).collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from({v:?}), ::serde::Value::Array(::std::vec![{}]))])",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    Fields::Named(names) => {
                        let payload = obj_literal(names, |f| f.to_string());
                        format!(
                            "{name}::{v} {{ {} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from({v:?}), {payload})])",
                            names.join(", ")
                        )
                    }
                };
                arms.push(arm);
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {} }} }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    }
}

fn obj_literal(names: &[String], access: impl Fn(&str) -> String) -> String {
    let items: Vec<String> = names
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({}))",
                access(f)
            )
        })
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", items.join(", "))
}

fn gen_deserialize(def: &TypeDef) -> String {
    match def {
        TypeDef::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(__a.get({i}).unwrap_or(&::serde::Value::Null))?"))
                        .collect();
                    format!(
                        "let __a = v.as_array().ok_or_else(|| ::serde::Error::msg(\"expected array for tuple struct {name}\"))?;\n\
                         ::std::result::Result::Ok({name}({}))",
                        items.join(", ")
                    )
                }
                Fields::Named(names) => {
                    let items: Vec<String> = names
                        .iter()
                        .map(|f| format!("{f}: ::serde::de_field(v, {f:?})?"))
                        .collect();
                    format!("::std::result::Result::Ok({name} {{ {} }})", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        TypeDef::Enum { name, variants } => {
            let mut unit_arms = Vec::new();
            let mut payload_arms = Vec::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => unit_arms.push(format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v})"
                    )),
                    Fields::Tuple(1) => payload_arms.push(format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(__payload)?))"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(__a.get({i}).unwrap_or(&::serde::Value::Null))?"))
                            .collect();
                        payload_arms.push(format!(
                            "{v:?} => {{\n\
                                 let __a = __payload.as_array().ok_or_else(|| ::serde::Error::msg(\"expected array payload\"))?;\n\
                                 ::std::result::Result::Ok({name}::{v}({}))\n\
                             }}",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(names) => {
                        let items: Vec<String> = names
                            .iter()
                            .map(|f| format!("{f}: ::serde::de_field(__payload, {f:?})?"))
                            .collect();
                        payload_arms.push(format!(
                            "{v:?} => ::std::result::Result::Ok({name}::{v} {{ {} }})",
                            items.join(", ")
                        ));
                    }
                }
            }
            let err = format!(
                "::std::result::Result::Err(::serde::Error::msg(::std::format!(\"unknown {name} variant {{:?}}\", v)))"
            );
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if let ::serde::Value::String(__s) = v {{\n\
                             return match __s.as_str() {{ {unit} _ => {err} }};\n\
                         }}\n\
                         if let ::serde::Value::Object(__fields) = v {{\n\
                             if __fields.len() == 1 {{\n\
                                 let (__k, __payload) = &__fields[0];\n\
                                 let _ = __payload;\n\
                                 return match __k.as_str() {{ {payload} _ => {err} }};\n\
                             }}\n\
                         }}\n\
                         {err}\n\
                     }}\n\
                 }}",
                unit = unit_arms.iter().map(|a| format!("{a},")).collect::<String>(),
                payload = payload_arms.iter().map(|a| format!("{a},")).collect::<String>(),
            )
        }
    }
}
