//! Offline vendored stand-in for `criterion`.
//!
//! Wall-clock benchmarking with criterion's API shape (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`, the
//! `criterion_group!`/`criterion_main!` macros). No statistics beyond the
//! mean — each benchmark warms up briefly, then reports mean ns/iter over a
//! fixed measurement window to stdout.
//!
//! `--test` on the command line (what `cargo test` passes to harness=false
//! bench targets) runs each benchmark exactly once for a smoke check.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(150);
const MEASURE: Duration = Duration::from_millis(400);

/// Benchmark identifier: `name` or `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Conversions accepted wherever criterion takes an id.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Throughput annotation (recorded, displayed alongside the mean).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Runs one benchmark's iterations.
pub struct Bencher {
    test_mode: bool,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std_black_box(f());
            self.mean_ns = 0.0;
            self.iters = 1;
            return;
        }
        // Warm up and estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP || warm_iters == 0 {
            std_black_box(f());
            warm_iters += 1;
        }
        let est = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        // Measure for a fixed window using the warmed estimate.
        let target = ((MEASURE.as_nanos() as f64 / est.max(1.0)) as u64).clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..target {
            std_black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / target as f64;
        self.iters = target;
    }

    /// Criterion's `iter_custom`: the closure runs `iters` iterations and
    /// returns the duration it measured for them. For benchmarks that must
    /// time a sub-region (excluding setup/teardown) or report a derived
    /// quantity such as a latency percentile — return `percentile * iters`
    /// and the harness prints the percentile as ns/iter.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        if self.test_mode {
            std_black_box(f(1));
            self.mean_ns = 0.0;
            self.iters = 1;
            return;
        }
        // Warm up one batch at a time to estimate per-iteration cost.
        let mut warm = Duration::ZERO;
        let mut warm_iters = 0u64;
        let warm_start = Instant::now();
        while (warm_start.elapsed() < WARMUP || warm_iters == 0) && warm_iters < 1_000 {
            warm += f(1);
            warm_iters += 1;
        }
        let est = (warm.as_nanos() as f64 / warm_iters as f64).max(1.0);
        let target = ((MEASURE.as_nanos() as f64 / est) as u64).clamp(1, 10_000_000);
        let spent = f(target);
        self.mean_ns = spent.as_nanos() as f64 / target as f64;
        self.iters = target;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        self.criterion.run_one(&label, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        self.criterion.run_one(&label, self.throughput, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_id();
        self.run_one(&label, None, &mut f);
        self
    }

    fn run_one(&self, label: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher { test_mode: self.test_mode, mean_ns: 0.0, iters: 0 };
        f(&mut b);
        if self.test_mode {
            println!("{label}: ok (test mode)");
            return;
        }
        let extra = match throughput {
            Some(Throughput::Elements(n)) if b.mean_ns > 0.0 => {
                format!("  ({:.3} Melem/s)", n as f64 * 1e3 / b.mean_ns)
            }
            Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) if b.mean_ns > 0.0 => {
                format!("  ({:.1} MiB/s)", n as f64 * 1e9 / b.mean_ns / (1 << 20) as f64)
            }
            _ => String::new(),
        };
        println!("{label:60} {:>14.1} ns/iter  [{} iters]{extra}", b.mean_ns, b.iters);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
