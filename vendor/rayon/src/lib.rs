//! Offline vendored stand-in for `rayon`.
//!
//! Provides rayon's `par_iter`-style entry points backed by *sequential*
//! standard iterators, so `.par_iter().map(..).collect()` call sites compile
//! and run unchanged (serially). Since the return types are plain `std`
//! iterators, the whole Iterator combinator surface is available.

pub mod prelude {
    pub use super::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIterator,
    };
}

/// Rayon-only combinators, mapped onto their sequential `Iterator`
/// equivalents (blanket-implemented so every std iterator has them).
pub trait ParallelIterator: Iterator + Sized {
    fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
    where
        U: IntoIterator,
        F: FnMut(Self::Item) -> U,
    {
        self.flat_map(f)
    }
}

impl<I: Iterator> ParallelIterator for I {}

/// `collection.into_par_iter()` — sequential stand-in.
pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// `collection.par_iter()` — sequential stand-in.
pub trait IntoParallelRefIterator<'a> {
    type Item: 'a;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, I: 'a + ?Sized> IntoParallelRefIterator<'a> for I
where
    &'a I: IntoIterator,
{
    type Item = <&'a I as IntoIterator>::Item;
    type Iter = <&'a I as IntoIterator>::IntoIter;
    fn par_iter(&'a self) -> Self::Iter {
        self.into_iter()
    }
}

/// `collection.par_iter_mut()` — sequential stand-in.
pub trait IntoParallelRefMutIterator<'a> {
    type Item: 'a;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, I: 'a + ?Sized> IntoParallelRefMutIterator<'a> for I
where
    &'a mut I: IntoIterator,
{
    type Item = <&'a mut I as IntoIterator>::Item;
    type Iter = <&'a mut I as IntoIterator>::IntoIter;
    fn par_iter_mut(&'a mut self) -> Self::Iter {
        self.into_iter()
    }
}

/// Runs the two closures (sequentially here) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_map_collect() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let owned: Vec<i32> = v.into_par_iter().collect();
        assert_eq!(owned, vec![1, 2, 3]);
    }
}
