//! Offline vendored stand-in for `proptest`.
//!
//! Deterministic strategy-based randomized testing with the subset of the
//! proptest API this workspace uses: the `proptest!` macro, `Strategy` with
//! `prop_map`/`boxed`, range and tuple strategies, `Just`, `any::<bool>()`,
//! `prop::collection::vec`, `prop_oneof!`, and `prop_assert*` macros.
//!
//! Failing cases are *not* shrunk — the panic message includes the case
//! number and the per-test RNG is seeded from the test name, so failures
//! reproduce exactly on re-run.

use std::ops::Range;

/// Run-count configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test RNG (xoshiro256** seeded from the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, then splitmix64 expansion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }

    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of random values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Half-open integer ranges are strategies, as in proptest.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64_unit() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D), (0 A, 1 B, 2 C, 3 D, 4 E));

/// Type-erased strategy (what `prop_oneof!` branches become).
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Uniform choice among alternatives (`prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;
    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty => $s:ident),*) => {$(
        pub struct $s;
        impl Strategy for $s {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = $s;
            fn arbitrary() -> $s { $s }
        }
    )*};
}
impl_arbitrary_int!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64, usize => AnyUsize);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element_strategy, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let n = self.size.min + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union,
    };
    /// `prop::collection::vec(...)`-style paths.
    pub use crate as prop;
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($s)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(stringify!($name));
            for __case in 0..__cfg.cases {
                let __run = |__rng: &mut $crate::TestRng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    $body
                };
                let __result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    __run(&mut __rng)
                }));
                if let Err(e) = __result {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed",
                        __case + 1,
                        __cfg.cases,
                        stringify!($name)
                    );
                    std::panic::resume_unwind(e);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 1u8..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..4).contains(&y));
        }

        #[test]
        fn vec_and_oneof(v in prop::collection::vec(prop_oneof![Just(1u32), 5u32..9], 2..6), b in any::<bool>()) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in &v {
                prop_assert!(*x == 1 || (5..9).contains(x), "{x}");
            }
            let _ = b;
        }

        #[test]
        fn mapped(op in (1u16..100).prop_map(|n| n * 2)) {
            prop_assert!(op % 2 == 0);
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
